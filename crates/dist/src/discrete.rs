use crate::{DistError, DistScratch, TimeStep};
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// Probabilities smaller than this are treated as exact zeros when trimming.
const TRIM_EPS: f64 = 0.0;

/// Tolerance for "mass may exceed one" checks (accumulated rounding).
const MASS_EPS: f64 = 1e-6;

/// Relative tolerance for the quantile search: the accumulated CDF is
/// compared against the target with a slack of `QUANTILE_REL_EPS` times
/// the total mass, so the tolerance scales with the group's mass and
/// sub-probability groups (conditioned branches carry mass ≪ 1) resolve
/// their quantiles exactly like unit-mass groups do.
const QUANTILE_REL_EPS: f64 = 1e-12;

/// A discrete (sub-)probability distribution over integer time ticks.
///
/// This is the *event group* of the paper (§2.1): a set of probabilistic
/// events `⟨t, p⟩`, stored densely over consecutive ticks of the global
/// [`TimeStep`] grid. Both discretized cell delays (Fig. 2) and signal
/// arrival times are values of this type.
///
/// The distribution may be *sub*-probability: the paper's
/// low-probability-event dropping heuristic (§3.3) removes mass, and
/// conditioned stem evaluations carry scaled-down mass. [`total_mass`]
/// reports the current mass; [`normalize`] rescales to one.
///
/// # Invariants
///
/// * all probabilities are finite and non-negative,
/// * total mass never exceeds `1 + ε`,
/// * the dense vector is trimmed: its first and last entries are non-zero
///   (or the distribution is empty).
///
/// # Example
///
/// ```
/// use pep_dist::DiscreteDist;
///
/// // The paper's Fig. 1(b): arrival 10 with p=0.1, 13 with 0.3, 14 with
/// // 0.3, 21 with 0.3 (probability ratios 1/3/3/3 over 10).
/// let g = DiscreteDist::from_pairs([(10, 0.1), (13, 0.3), (14, 0.3), (21, 0.3)]);
/// assert_eq!(g.support_len(), 4);
/// assert!((g.total_mass() - 1.0).abs() < 1e-12);
/// assert_eq!(g.min_tick(), Some(10));
/// assert_eq!(g.max_tick(), Some(21));
/// ```
///
/// [`total_mass`]: DiscreteDist::total_mass
/// [`normalize`]: DiscreteDist::normalize
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DiscreteDist {
    /// Tick of `probs[0]`.
    origin: i64,
    /// Dense probabilities; `probs[i]` is the mass at tick `origin + i`.
    probs: Vec<f64>,
}

impl DiscreteDist {
    /// The empty (zero-mass) distribution.
    pub fn empty() -> Self {
        DiscreteDist::default()
    }

    /// A deterministic event at `tick` with probability one.
    pub fn point(tick: i64) -> Self {
        DiscreteDist {
            origin: tick,
            probs: vec![1.0],
        }
    }

    /// A single probabilistic event `⟨tick, prob⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `prob` is negative or non-finite (all builds), or in
    /// debug builds if it exceeds `1 + ε`.
    pub fn event(tick: i64, prob: f64) -> Self {
        // invariant: the only try_event failure is a bad probability,
        // which this panicking constructor promises to reject loudly.
        Self::try_event(tick, prob).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`event`](DiscreteDist::event): returns
    /// [`DistError::BadProbability`] instead of panicking on a negative
    /// or non-finite probability.
    ///
    /// # Errors
    ///
    /// Returns an error if `prob` is negative, NaN or infinite.
    pub fn try_event(tick: i64, prob: f64) -> Result<Self, DistError> {
        if !(prob.is_finite() && prob >= 0.0) {
            return Err(DistError::BadProbability { value: prob });
        }
        let mut d = DiscreteDist {
            origin: tick,
            probs: vec![prob],
        };
        d.trim();
        d.debug_check();
        Ok(d)
    }

    /// Builds a distribution from `(tick, probability)` pairs.
    ///
    /// Pairs may arrive in any order; masses at equal ticks are summed
    /// (the paper's *group* operation). The dense vector is built in a
    /// single pass over the input, growing the window as new extremes
    /// arrive — no intermediate collection.
    ///
    /// # Panics
    ///
    /// Panics if any probability is negative or non-finite (all builds),
    /// or in debug builds if the total mass exceeds `1 + ε`.
    pub fn from_pairs<I>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (i64, f64)>,
    {
        // invariant: try_from_pairs only fails on a bad probability or a
        // tick-window overflow; both are caller bugs this panicking
        // constructor promises to reject loudly.
        Self::try_from_pairs(pairs).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`from_pairs`](DiscreteDist::from_pairs):
    /// returns a [`DistError`] instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::BadProbability`] if any probability is
    /// negative, NaN or infinite, and [`DistError::TickOverflow`] if the
    /// tick window spans more than `i64` allows.
    pub fn try_from_pairs<I>(pairs: I) -> Result<Self, DistError>
    where
        I: IntoIterator<Item = (i64, f64)>,
    {
        let mut d = DiscreteDist::empty();
        for (t, p) in pairs {
            if p == 0.0 {
                continue;
            }
            if !(p.is_finite() && p >= 0.0) {
                return Err(DistError::BadProbability { value: p });
            }
            if d.probs.is_empty() {
                d.origin = t;
                d.probs.push(p);
                continue;
            }
            let idx = t.checked_sub(d.origin).ok_or(DistError::TickOverflow {
                origin: d.origin,
                delta: t,
            })?;
            if idx < 0 {
                let gap = (-idx) as usize;
                d.probs.splice(0..0, std::iter::repeat_n(0.0, gap));
                d.origin = t;
                d.probs[0] += p;
            } else if (idx as usize) < d.probs.len() {
                d.probs[idx as usize] += p;
            } else {
                d.probs.resize(idx as usize + 1, 0.0);
                d.probs[idx as usize] += p;
            }
        }
        d.trim();
        d.debug_check();
        Ok(d)
    }

    /// Builds a distribution from integer *probability ratios*, the paper's
    /// Fig. 1(c) notation: each ratio is divided by the sum of all ratios.
    ///
    /// # Example
    ///
    /// ```
    /// use pep_dist::DiscreteDist;
    ///
    /// // Fig. 1(c): ratios 1, 3, 3, 3 at ticks 10, 13, 14, 21.
    /// let g = DiscreteDist::from_ratios([(10, 1), (13, 3), (14, 3), (21, 3)]);
    /// assert!((g.prob_at(10) - 0.1).abs() < 1e-12);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if all ratios are zero.
    pub fn from_ratios<I>(ratios: I) -> Self
    where
        I: IntoIterator<Item = (i64, u64)>,
    {
        let ratios: Vec<(i64, u64)> = ratios.into_iter().collect();
        let total: u64 = ratios.iter().map(|&(_, r)| r).sum();
        assert!(total > 0, "probability ratios must not all be zero");
        DiscreteDist::from_pairs(
            ratios
                .into_iter()
                .map(|(t, r)| (t, r as f64 / total as f64)),
        )
    }

    /// Builds a distribution from a dense probability vector starting at
    /// `origin`.
    ///
    /// # Panics
    ///
    /// Panics if any probability is negative or non-finite.
    pub fn from_dense(origin: i64, probs: Vec<f64>) -> Self {
        // invariant: the only try_from_dense failure is a bad
        // probability, rejected loudly here.
        Self::try_from_dense(origin, probs).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`from_dense`](DiscreteDist::from_dense).
    ///
    /// # Errors
    ///
    /// Returns [`DistError::BadProbability`] if any probability is
    /// negative, NaN or infinite.
    pub fn try_from_dense(origin: i64, probs: Vec<f64>) -> Result<Self, DistError> {
        if let Some(&bad) = probs.iter().find(|p| !(p.is_finite() && **p >= 0.0)) {
            return Err(DistError::BadProbability { value: bad });
        }
        let mut d = DiscreteDist { origin, probs };
        d.trim();
        d.debug_check();
        Ok(d)
    }

    /// Whether the distribution carries no mass.
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// Number of ticks in the (dense, trimmed) support window.
    pub fn support_span(&self) -> usize {
        self.probs.len()
    }

    /// Number of events with strictly positive probability.
    pub fn support_len(&self) -> usize {
        self.probs.iter().filter(|&&p| p > 0.0).count()
    }

    /// Earliest tick with positive probability, if any.
    pub fn min_tick(&self) -> Option<i64> {
        if self.is_empty() {
            None
        } else {
            Some(self.origin)
        }
    }

    /// Latest tick with positive probability, if any.
    pub fn max_tick(&self) -> Option<i64> {
        if self.is_empty() {
            None
        } else {
            Some(self.origin + self.probs.len() as i64 - 1)
        }
    }

    /// The probability mass at `tick`.
    pub fn prob_at(&self, tick: i64) -> f64 {
        let idx = tick - self.origin;
        if idx < 0 || idx as usize >= self.probs.len() {
            0.0
        } else {
            self.probs[idx as usize]
        }
    }

    /// Total probability mass (1 for a full distribution, less after event
    /// dropping or conditioning).
    pub fn total_mass(&self) -> f64 {
        self.probs.iter().sum()
    }

    /// Iterates over `(tick, probability)` events with positive mass.
    pub fn iter(&self) -> impl Iterator<Item = (i64, f64)> + '_ {
        self.probs
            .iter()
            .enumerate()
            .filter(|&(_, &p)| p > 0.0)
            .map(move |(i, &p)| (self.origin + i as i64, p))
    }

    /// Mean arrival time, in ticks, of the *normalized* distribution.
    ///
    /// Returns NaN for an empty distribution.
    pub fn mean_ticks(&self) -> f64 {
        let mass = self.total_mass();
        let mut acc = 0.0;
        for (t, p) in self.iter() {
            acc += t as f64 * p;
        }
        acc / mass
    }

    /// Variance, in ticks², of the *normalized* distribution.
    ///
    /// Returns NaN for an empty distribution.
    pub fn variance_ticks(&self) -> f64 {
        let mass = self.total_mass();
        let mean = self.mean_ticks();
        let mut acc = 0.0;
        for (t, p) in self.iter() {
            let d = t as f64 - mean;
            acc += d * d * p;
        }
        acc / mass
    }

    /// Standard deviation in ticks of the normalized distribution.
    pub fn std_ticks(&self) -> f64 {
        self.variance_ticks().sqrt()
    }

    /// Mean arrival time converted to physical time.
    pub fn mean_time(&self, step: TimeStep) -> f64 {
        step.time_of_f(self.mean_ticks())
    }

    /// Standard deviation converted to physical time.
    pub fn std_time(&self, step: TimeStep) -> f64 {
        step.time_of_f(self.std_ticks())
    }

    /// `P(X <= tick)` (not normalized; tops out at [`total_mass`]).
    ///
    /// [`total_mass`]: DiscreteDist::total_mass
    pub fn cdf_at(&self, tick: i64) -> f64 {
        if self.is_empty() || tick < self.origin {
            return 0.0;
        }
        let hi = ((tick - self.origin) as usize).min(self.probs.len() - 1);
        self.probs[..=hi].iter().sum()
    }

    /// Smallest tick `t` with normalized `P(X <= t) >= q`.
    ///
    /// Returns `None` for an empty distribution or `q` outside `(0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<i64> {
        if self.is_empty() || !(0.0..=1.0).contains(&q) || q == 0.0 {
            return None;
        }
        let total = self.total_mass();
        let target = q * total;
        // The slack must scale with the group's mass: an absolute epsilon
        // dominates `q * total` for scaled-down sub-probability groups and
        // collapses every quantile toward the first tick.
        let slack = QUANTILE_REL_EPS * total;
        let mut acc = 0.0;
        for (i, &p) in self.probs.iter().enumerate() {
            acc += p;
            if acc + slack >= target {
                return Some(self.origin + i as i64);
            }
        }
        self.max_tick()
    }

    /// Draws a tick according to the normalized distribution.
    ///
    /// Returns `None` if the distribution is empty.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Option<i64> {
        if self.is_empty() {
            return None;
        }
        let target: f64 = rng.random::<f64>() * self.total_mass();
        let mut acc = 0.0;
        for (i, &p) in self.probs.iter().enumerate() {
            acc += p;
            if target < acc {
                return Some(self.origin + i as i64);
            }
        }
        self.max_tick()
    }

    /// Builds a reusable O(log n)-per-draw sampler over the normalized
    /// distribution.
    ///
    /// [`sample`](DiscreteDist::sample) walks the whole support per draw;
    /// when thousands of draws come from the same group (the hybrid
    /// Monte-Carlo-inside-a-supergate path), build a sampler once instead.
    ///
    /// Returns `None` if the distribution is empty.
    ///
    /// # Example
    ///
    /// ```
    /// use pep_dist::DiscreteDist;
    /// use rand::SeedableRng;
    ///
    /// let g = DiscreteDist::from_ratios([(3, 1), (9, 3)]);
    /// let sampler = g.sampler().expect("non-empty");
    /// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    /// let t = sampler.sample(&mut rng);
    /// assert!(t == 3 || t == 9);
    /// ```
    pub fn sampler(&self) -> Option<TickSampler> {
        if self.is_empty() {
            return None;
        }
        let mut cdf = Vec::with_capacity(self.probs.len());
        let mut acc = 0.0;
        for &p in &self.probs {
            acc += p;
            cdf.push(acc);
        }
        Some(TickSampler {
            origin: self.origin,
            total: acc,
            cdf,
        })
    }

    /// Shifts every event by `dt` ticks (the paper's *shift* operation).
    ///
    /// # Panics
    ///
    /// Panics if the shift would overflow the `i64` tick index.
    pub fn shift(&mut self, dt: i64) {
        // invariant: overflow here means ticks near i64::MAX — a caller
        // bug (delays are discretized from bounded physical times).
        self.try_shift(dt).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`shift`](DiscreteDist::shift): checks the tick
    /// arithmetic instead of overflowing.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::TickOverflow`] when `origin + dt` (or the
    /// shifted window's last tick) leaves the `i64` range; the
    /// distribution is unchanged on error.
    pub fn try_shift(&mut self, dt: i64) -> Result<(), DistError> {
        let overflow = DistError::TickOverflow {
            origin: self.origin,
            delta: dt,
        };
        let origin = self.origin.checked_add(dt).ok_or(overflow.clone())?;
        // The last tick of the shifted window must stay representable
        // too, or downstream max_tick()/iter() arithmetic overflows.
        if !self.probs.is_empty() {
            origin
                .checked_add(self.probs.len() as i64 - 1)
                .ok_or(overflow)?;
        }
        self.origin = origin;
        Ok(())
    }

    /// Returns a copy shifted by `dt` ticks.
    #[must_use]
    pub fn shifted(&self, dt: i64) -> Self {
        let mut d = self.clone();
        d.shift(dt);
        d
    }

    /// Scales every probability by `k` (the paper's *scaling*).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `k` is negative or non-finite.
    pub fn scale(&mut self, k: f64) {
        debug_assert!(k.is_finite() && k >= 0.0, "scale factor {k} invalid");
        if k == 0.0 {
            self.probs.clear();
            return;
        }
        if k == 1.0 {
            // x * 1.0 == x bitwise; skip the pass entirely.
            return;
        }
        for p in &mut self.probs {
            *p *= k;
        }
    }

    /// Returns a copy scaled by `k`.
    #[must_use]
    pub fn scaled(&self, k: f64) -> Self {
        let mut d = self.clone();
        d.scale(k);
        d
    }

    /// Fallible form of [`scale`](DiscreteDist::scale): validates the
    /// factor in all builds (not just debug) and returns a typed error
    /// instead of silently producing NaN mass.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::BadProbability`] when `k` is negative, NaN
    /// or infinite; the distribution is unchanged on error.
    pub fn try_scale(&mut self, k: f64) -> Result<(), DistError> {
        if !(k.is_finite() && k >= 0.0) {
            return Err(DistError::BadProbability { value: k });
        }
        self.scale(k);
        Ok(())
    }

    /// Adds `other`'s mass into `self` (the paper's *group* operation, `+`).
    ///
    /// Events at equal ticks merge by summing probabilities.
    pub fn accumulate(&mut self, other: &DiscreteDist) {
        if other.is_empty() {
            return;
        }
        if self.is_empty() {
            *self = other.clone();
            return;
        }
        let lo = self.origin.min(other.origin);
        let hi =
            (self.origin + self.probs.len() as i64).max(other.origin + other.probs.len() as i64);
        if lo == self.origin && hi == self.origin + self.probs.len() as i64 {
            // `other`'s span nests inside `self`'s: add in place, reusing
            // the existing buffer. Bitwise identical to the union build
            // below (each slot sees self's value first, then other's add).
            let off = (other.origin - lo) as usize;
            for (i, &p) in other.probs.iter().enumerate() {
                self.probs[off + i] += p;
            }
            self.debug_check();
            return;
        }
        let mut probs = vec![0.0; (hi - lo) as usize];
        for (i, &p) in self.probs.iter().enumerate() {
            probs[(self.origin - lo) as usize + i] += p;
        }
        for (i, &p) in other.probs.iter().enumerate() {
            probs[(other.origin - lo) as usize + i] += p;
        }
        self.origin = lo;
        self.probs = probs;
        self.debug_check();
    }

    /// The distribution of the *sum* of two independent variables
    /// (arrival time + cell delay).
    ///
    /// This is the paper's *shift with scaling* followed by *group* applied
    /// over all input events (Fig. 4), i.e. ordinary convolution.
    #[must_use]
    pub fn convolve(&self, other: &DiscreteDist) -> Self {
        if self.is_empty() || other.is_empty() {
            return DiscreteDist::empty();
        }
        let mut probs = vec![0.0; self.probs.len() + other.probs.len() - 1];
        // Iterate the shorter operand in the outer loop for cache behavior.
        let (a, b) = if self.probs.len() <= other.probs.len() {
            (self, other)
        } else {
            (other, self)
        };
        for (i, &pa) in a.probs.iter().enumerate() {
            if pa == 0.0 {
                continue;
            }
            for (j, &pb) in b.probs.iter().enumerate() {
                probs[i + j] += pa * pb;
            }
        }
        let mut d = DiscreteDist {
            origin: self.origin + other.origin,
            probs,
        };
        d.trim();
        d.debug_check();
        d
    }

    /// The distribution of the *maximum* of two independent variables
    /// (latest-arrival combining at a gate with multiple inputs).
    ///
    /// Missing mass (from dropped events) is interpreted as "the event never
    /// happens"; the result's mass is the product of the operands' masses,
    /// exactly as the paper's pairwise comparison produces.
    #[must_use]
    pub fn max(&self, other: &DiscreteDist) -> Self {
        if self.is_empty() || other.is_empty() {
            return DiscreteDist::empty();
        }
        let lo = self.origin.max(other.origin);
        let hi = self
            .max_tick()
            .expect("non-empty")
            .max(other.max_tick().expect("non-empty"));
        let n = (hi - lo + 1) as usize;
        let mut probs = vec![0.0; n];
        // F_max(t) = F1(t) * F2(t); p(t) = F(t) - F(t-1).
        let mut f1 = self.cdf_at(lo - 1);
        let mut f2 = other.cdf_at(lo - 1);
        let mut prev = f1 * f2;
        for (i, slot) in probs.iter_mut().enumerate() {
            let t = lo + i as i64;
            f1 += self.prob_at(t);
            f2 += other.prob_at(t);
            let cur = f1 * f2;
            *slot = (cur - prev).max(0.0);
            prev = cur;
        }
        let mut d = DiscreteDist { origin: lo, probs };
        d.trim();
        d.debug_check();
        d
    }

    /// The distribution of the *minimum* of two independent variables
    /// (earliest-arrival combining, e.g. a falling AND output — Fig. 5).
    ///
    /// Mass semantics mirror [`max`](DiscreteDist::max): the result carries
    /// the product of the operands' masses.
    #[must_use]
    pub fn min(&self, other: &DiscreteDist) -> Self {
        if self.is_empty() || other.is_empty() {
            return DiscreteDist::empty();
        }
        let lo = self.origin.min(other.origin);
        // min(X, Y) never exceeds the smaller of the two maxima, and the
        // smaller maximum is always >= the smaller origin, so hi >= lo.
        let hi = self
            .max_tick()
            .expect("non-empty")
            .min(other.max_tick().expect("non-empty"));
        let m1 = self.total_mass();
        let m2 = other.total_mass();
        let n = (hi - lo + 1) as usize;
        let mut probs = vec![0.0; n];
        // P(min <= t) = m1*m2 - S1(t)*S2(t) with S(t) = mass - F(t).
        let mut f1 = self.cdf_at(lo - 1);
        let mut f2 = other.cdf_at(lo - 1);
        let mut prev = m1 * m2 - (m1 - f1) * (m2 - f2);
        for (i, slot) in probs.iter_mut().enumerate() {
            let t = lo + i as i64;
            f1 += self.prob_at(t);
            f2 += other.prob_at(t);
            let cur = m1 * m2 - (m1 - f1) * (m2 - f2);
            *slot = (cur - prev).max(0.0);
            prev = cur;
        }
        let mut d = DiscreteDist { origin: lo, probs };
        d.trim();
        d.debug_check();
        d
    }

    /// Drops events with probability below `p_min` (the paper's
    /// low-probability-event filter, §3.3) and returns the removed mass.
    ///
    /// The distribution is *not* renormalized, matching the paper; call
    /// [`normalize`](DiscreteDist::normalize) to rescale if desired.
    pub fn truncate_below(&mut self, p_min: f64) -> f64 {
        let mut dropped = 0.0;
        for p in &mut self.probs {
            if *p < p_min {
                dropped += *p;
                *p = 0.0;
            }
        }
        self.trim();
        dropped
    }

    /// Rescales the distribution to total mass one.
    ///
    /// Empty distributions stay empty.
    pub fn normalize(&mut self) {
        let mass = self.total_mass();
        if mass > 0.0 {
            for p in &mut self.probs {
                *p /= mass;
            }
        }
    }

    /// Returns a normalized copy.
    #[must_use]
    pub fn normalized(&self) -> Self {
        let mut d = self.clone();
        d.normalize();
        d
    }

    /// Reduces the distribution to at most `k` events by merging runs of
    /// adjacent events with (roughly) equal mass into single events at
    /// their conditional mean tick.
    ///
    /// Total mass, and the mean up to rounding, are preserved; the shape
    /// is coarsened. Used to cheapen sensitivity-ranking passes that only
    /// need an approximate answer.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    #[must_use]
    pub fn coarsened(&self, k: usize) -> Self {
        assert!(k > 0, "need at least one bucket");
        if self.support_len() <= k {
            return self.clone();
        }
        let mass = self.total_mass();
        let target = mass / k as f64;
        let mut out: Vec<(i64, f64)> = Vec::with_capacity(k);
        let mut bucket_mass = 0.0;
        let mut bucket_moment = 0.0;
        for (t, p) in self.iter() {
            bucket_mass += p;
            bucket_moment += t as f64 * p;
            if bucket_mass + 1e-15 >= target && out.len() < k - 1 {
                out.push(((bucket_moment / bucket_mass).round() as i64, bucket_mass));
                bucket_mass = 0.0;
                bucket_moment = 0.0;
            }
        }
        if bucket_mass > 0.0 {
            out.push(((bucket_moment / bucket_mass).round() as i64, bucket_mass));
        }
        DiscreteDist::from_pairs(out)
    }

    /// Kolmogorov–Smirnov distance between the normalized distributions:
    /// the largest absolute CDF difference, in `[0, 1]`.
    ///
    /// Less sensitive to grid alignment than [`l1_distance`]
    /// (neighbouring-tick mass moves barely register), which makes it the
    /// better metric for comparing analyses run on different grids.
    ///
    /// [`l1_distance`]: DiscreteDist::l1_distance
    pub fn kolmogorov_distance(&self, other: &DiscreteDist) -> f64 {
        let a = self.normalized();
        let b = other.normalized();
        if a.is_empty() && b.is_empty() {
            return 0.0;
        }
        if a.is_empty() || b.is_empty() {
            return 1.0;
        }
        let lo = a.origin.min(b.origin);
        let hi = a
            .max_tick()
            .expect("non-empty")
            .max(b.max_tick().expect("non-empty"));
        let mut fa = 0.0;
        let mut fb = 0.0;
        let mut worst = 0.0f64;
        for t in lo..=hi {
            fa += a.prob_at(t);
            fb += b.prob_at(t);
            worst = worst.max((fa - fb).abs());
        }
        worst
    }

    /// Skewness of the normalized distribution (`E[(X−μ)³]/σ³`); 0 for
    /// symmetric shapes, NaN when the variance is zero or the
    /// distribution is empty.
    pub fn skewness(&self) -> f64 {
        let mass = self.total_mass();
        let mean = self.mean_ticks();
        let sigma = self.std_ticks();
        let mut acc = 0.0;
        for (t, p) in self.iter() {
            let d = t as f64 - mean;
            acc += d * d * d * p;
        }
        acc / mass / (sigma * sigma * sigma)
    }

    /// L1 distance between the normalized distributions
    /// (`Σ |p(t) − q(t)|`); 0 for identical shapes, up to 2 for disjoint.
    pub fn l1_distance(&self, other: &DiscreteDist) -> f64 {
        let a = self.normalized();
        let b = other.normalized();
        if a.is_empty() && b.is_empty() {
            return 0.0;
        }
        if a.is_empty() || b.is_empty() {
            return 2.0;
        }
        let lo = a.origin.min(b.origin);
        let hi = a
            .max_tick()
            .expect("non-empty")
            .max(b.max_tick().expect("non-empty"));
        let mut acc = 0.0;
        for t in lo..=hi {
            acc += (a.prob_at(t) - b.prob_at(t)).abs();
        }
        acc
    }

    // ------------------------------------------------------------------
    // Allocation-free kernel layer.
    //
    // The `*_into` variants below write into caller-provided buffers and
    // draw any internal temporaries from a [`DistScratch`] arena. Each is
    // bit-identical (`==` on exact f64 bits) to its allocating
    // counterpart: same operation order, same f64 accumulation order.
    // That property is what lets the conditioning recursion adopt them
    // without perturbing the analyzer's deterministic output contract.
    // ------------------------------------------------------------------

    /// A reference to the canonical empty distribution (useful as a
    /// placeholder where a `&DiscreteDist` is needed without allocating).
    pub fn empty_ref() -> &'static DiscreteDist {
        static EMPTY: DiscreteDist = DiscreteDist {
            origin: 0,
            probs: Vec::new(),
        };
        &EMPTY
    }

    /// Clears to the empty distribution, retaining allocated capacity.
    pub fn clear(&mut self) {
        self.origin = 0;
        self.probs.clear();
    }

    /// Copies `other`'s contents into `self`, reusing `self`'s buffer.
    ///
    /// Unlike `Clone::clone_from`, never shrinks or reallocates below
    /// the retained capacity unless `other` is larger.
    pub fn copy_from(&mut self, other: &DiscreteDist) {
        self.origin = other.origin;
        self.probs.clear();
        self.probs.extend_from_slice(&other.probs);
    }

    /// Turns `self` into a deterministic event at `tick` with probability
    /// one, reusing the existing buffer (no allocation after first use).
    pub fn set_point(&mut self, tick: i64) {
        self.origin = tick;
        self.probs.clear();
        self.probs.push(1.0);
    }

    /// [`convolve`](DiscreteDist::convolve) into a caller-provided buffer.
    ///
    /// Bit-identical to the allocating version; additionally takes the
    /// paper's *shift with scaling* fast path when either operand is a
    /// single event (a point distribution): convolving with `⟨t, p⟩` is a
    /// shift by `t` and a scale by `p`, no quadratic loop needed.
    pub fn convolve_into(&self, other: &DiscreteDist, out: &mut DiscreteDist) {
        if self.is_empty() || other.is_empty() {
            out.clear();
            return;
        }
        if other.probs.len() == 1 || self.probs.len() == 1 {
            // Shift + scale: `probs[i+0] += p_point * p_other[i]` is the
            // only term per slot, and f64 multiplication commutes
            // bitwise, so this equals the generic loop exactly.
            let (point, wide) = if other.probs.len() == 1 {
                (other, self)
            } else {
                (self, other)
            };
            let p = point.probs[0];
            out.origin = self.origin + other.origin;
            out.probs.clear();
            out.probs.extend_from_slice(&wide.probs);
            if p != 1.0 {
                for q in &mut out.probs {
                    *q *= p;
                }
                // Tiny masses can underflow to zero; re-trim like the
                // generic path does.
                out.trim();
            }
            out.debug_check();
            return;
        }
        out.probs.clear();
        out.probs
            .resize(self.probs.len() + other.probs.len() - 1, 0.0);
        // Iterate the shorter operand in the outer loop for cache behavior.
        let (a, b) = if self.probs.len() <= other.probs.len() {
            (self, other)
        } else {
            (other, self)
        };
        for (i, &pa) in a.probs.iter().enumerate() {
            if pa == 0.0 {
                continue;
            }
            // Subslice + zip keeps the inner loop free of per-element
            // bounds checks so it vectorizes; elementwise mul-add in the
            // same order is bit-identical to the indexed form.
            let dst = &mut out.probs[i..i + b.probs.len()];
            for (d, &pb) in dst.iter_mut().zip(b.probs.iter()) {
                *d += pa * pb;
            }
        }
        out.origin = self.origin + other.origin;
        out.trim();
        out.debug_check();
    }

    /// Convolves `other` into `self` in place.
    ///
    /// Point operands shift+scale without touching the arena; the
    /// general case uses one scratch slab and swaps buffers.
    pub fn convolve_in_place(&mut self, other: &DiscreteDist, scratch: &mut DistScratch) {
        if self.is_empty() {
            return;
        }
        if other.is_empty() {
            self.clear();
            return;
        }
        if other.probs.len() == 1 {
            self.origin += other.origin;
            let p = other.probs[0];
            if p != 1.0 {
                for q in &mut self.probs {
                    *q *= p;
                }
                self.trim();
            }
            self.debug_check();
            return;
        }
        if self.probs.len() == 1 {
            let t = self.origin;
            let p = self.probs[0];
            self.origin = t + other.origin;
            self.probs.clear();
            self.probs.extend_from_slice(&other.probs);
            if p != 1.0 {
                for q in &mut self.probs {
                    *q *= p;
                }
                self.trim();
            }
            self.debug_check();
            return;
        }
        let mut tmp = scratch.take();
        self.convolve_into(other, &mut tmp);
        std::mem::swap(self, &mut tmp);
        scratch.put(tmp);
    }

    /// [`max`](DiscreteDist::max) into a caller-provided buffer
    /// (bit-identical, no allocation once `out` has capacity).
    ///
    /// The window loop is split at the earlier operand's end so each
    /// segment advances plain slice iterators instead of calling the
    /// bounds-checked `prob_at` per tick; an exhausted operand's CDF is
    /// frozen, exactly as adding its `prob_at` zeros would leave it.
    pub fn max_into(&self, other: &DiscreteDist, out: &mut DiscreteDist) {
        if self.is_empty() || other.is_empty() {
            out.clear();
            return;
        }
        let lo = self.origin.max(other.origin);
        let hi = self
            .max_tick()
            .expect("non-empty")
            .max(other.max_tick().expect("non-empty"));
        let n = (hi - lo + 1) as usize;
        out.probs.clear();
        out.probs.resize(n, 0.0);
        let mut f1 = self.cdf_at(lo - 1);
        let mut f2 = other.cdf_at(lo - 1);
        let mut prev = f1 * f2;
        // The span has two segments: both operands active, then the
        // longer one. An operand whose window ended before `lo` (disjoint
        // spans) clamps to the empty slice — its whole mass is already in
        // the initial `cdf_at(lo - 1)` prefix.
        let a = &self.probs[((lo - self.origin) as usize).min(self.probs.len())..];
        let b = &other.probs[((lo - other.origin) as usize).min(other.probs.len())..];
        let both = a.len().min(b.len());
        let (head, tail) = out.probs.split_at_mut(both);
        for ((slot, &pa), &pb) in head.iter_mut().zip(a).zip(b) {
            f1 += pa;
            f2 += pb;
            let cur = f1 * f2;
            *slot = (cur - prev).max(0.0);
            prev = cur;
        }
        if a.len() > both {
            for (slot, &pa) in tail.iter_mut().zip(&a[both..]) {
                f1 += pa;
                let cur = f1 * f2;
                *slot = (cur - prev).max(0.0);
                prev = cur;
            }
        } else {
            for (slot, &pb) in tail.iter_mut().zip(&b[both..]) {
                f2 += pb;
                let cur = f1 * f2;
                *slot = (cur - prev).max(0.0);
                prev = cur;
            }
        }
        out.origin = lo;
        out.trim();
        out.debug_check();
    }

    /// [`min`](DiscreteDist::min) into a caller-provided buffer
    /// (bit-identical, no allocation once `out` has capacity).
    ///
    /// Mirrors [`max_into`](DiscreteDist::max_into)'s segment structure,
    /// but here the windows switch *on* as ticks grow (the span starts at
    /// the earlier origin and ends before either window does): first the
    /// earlier-origin operand alone, then both.
    pub fn min_into(&self, other: &DiscreteDist, out: &mut DiscreteDist) {
        if self.is_empty() || other.is_empty() {
            out.clear();
            return;
        }
        let lo = self.origin.min(other.origin);
        let hi = self
            .max_tick()
            .expect("non-empty")
            .min(other.max_tick().expect("non-empty"));
        let m1 = self.total_mass();
        let m2 = other.total_mass();
        let n = (hi - lo + 1) as usize;
        out.probs.clear();
        out.probs.resize(n, 0.0);
        let mut f1 = self.cdf_at(lo - 1);
        let mut f2 = other.cdf_at(lo - 1);
        let mut prev = m1 * m2 - (m1 - f1) * (m2 - f2);
        let a_off = (self.origin - lo) as usize;
        let b_off = (other.origin - lo) as usize;
        // One offset is zero; the other operand joins at `s`. The span may
        // end before it does (s clamped to n), leaving segment two empty.
        let s = a_off.max(b_off).min(n);
        let (head, tail) = out.probs.split_at_mut(s);
        if a_off == 0 {
            for (slot, &pa) in head.iter_mut().zip(&self.probs[..s]) {
                f1 += pa;
                let cur = m1 * m2 - (m1 - f1) * (m2 - f2);
                *slot = (cur - prev).max(0.0);
                prev = cur;
            }
        } else {
            for (slot, &pb) in head.iter_mut().zip(&other.probs[..s]) {
                f2 += pb;
                let cur = m1 * m2 - (m1 - f1) * (m2 - f2);
                *slot = (cur - prev).max(0.0);
                prev = cur;
            }
        }
        if !tail.is_empty() {
            // Tail non-empty implies s reached the later origin, so both
            // `s - a_off` and `s - b_off` are in range.
            for ((slot, &pa), &pb) in tail
                .iter_mut()
                .zip(&self.probs[s - a_off..])
                .zip(&other.probs[s - b_off..])
            {
                f1 += pa;
                f2 += pb;
                let cur = m1 * m2 - (m1 - f1) * (m2 - f2);
                *slot = (cur - prev).max(0.0);
                prev = cur;
            }
        }
        out.origin = lo;
        out.trim();
        out.debug_check();
    }

    /// The *group* of `self` and `other` written into a caller-provided
    /// buffer (bit-identical to [`accumulate`](DiscreteDist::accumulate)
    /// applied to a copy of `self`).
    pub fn accumulate_into(&self, other: &DiscreteDist, out: &mut DiscreteDist) {
        if other.is_empty() {
            out.copy_from(self);
            return;
        }
        if self.is_empty() {
            out.copy_from(other);
            return;
        }
        let lo = self.origin.min(other.origin);
        let hi =
            (self.origin + self.probs.len() as i64).max(other.origin + other.probs.len() as i64);
        out.probs.clear();
        out.probs.resize((hi - lo) as usize, 0.0);
        for (i, &p) in self.probs.iter().enumerate() {
            out.probs[(self.origin - lo) as usize + i] += p;
        }
        for (i, &p) in other.probs.iter().enumerate() {
            out.probs[(other.origin - lo) as usize + i] += p;
        }
        out.origin = lo;
        out.debug_check();
    }

    /// Fused `self.accumulate(&other.scaled(scale))` — the conditioning
    /// recursion's leaf operation (add a branch's scaled contribution into
    /// the running output group) — without materializing the scaled copy.
    ///
    /// Bit-identical to the two-step form: each slot sees `self`'s value
    /// first, then `p * scale` added, exactly as `accumulate` would add
    /// the pre-scaled entry.
    pub fn accumulate_scaled(
        &mut self,
        other: &DiscreteDist,
        scale: f64,
        scratch: &mut DistScratch,
    ) {
        debug_assert!(
            scale.is_finite() && scale >= 0.0,
            "scale factor {scale} invalid"
        );
        if other.is_empty() || scale == 0.0 {
            return;
        }
        if self.is_empty() {
            // Matches `*self = other.scaled(scale)` (scaling does not
            // re-trim, so neither do we).
            self.copy_from(other);
            if scale != 1.0 {
                for p in &mut self.probs {
                    *p *= scale;
                }
            }
            self.debug_check();
            return;
        }
        let lo = self.origin.min(other.origin);
        let hi =
            (self.origin + self.probs.len() as i64).max(other.origin + other.probs.len() as i64);
        if lo == self.origin && hi == self.origin + self.probs.len() as i64 {
            let off = (other.origin - lo) as usize;
            for (i, &p) in other.probs.iter().enumerate() {
                self.probs[off + i] += p * scale;
            }
            self.debug_check();
            return;
        }
        let mut tmp = scratch.take();
        tmp.probs.clear();
        tmp.probs.resize((hi - lo) as usize, 0.0);
        for (i, &p) in self.probs.iter().enumerate() {
            tmp.probs[(self.origin - lo) as usize + i] += p;
        }
        for (i, &p) in other.probs.iter().enumerate() {
            tmp.probs[(other.origin - lo) as usize + i] += p * scale;
        }
        tmp.origin = lo;
        std::mem::swap(self, &mut tmp);
        scratch.put(tmp);
        self.debug_check();
    }

    /// [`coarsened`](DiscreteDist::coarsened) into a caller-provided
    /// buffer; the bucket staging pairs live in the arena.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn coarsen_into(&self, k: usize, out: &mut DiscreteDist, scratch: &mut DistScratch) {
        assert!(k > 0, "need at least one bucket");
        if self.support_len() <= k {
            out.copy_from(self);
            return;
        }
        let mass = self.total_mass();
        let target = mass / k as f64;
        let pairs = &mut scratch.pairs;
        pairs.clear();
        let mut bucket_mass = 0.0;
        let mut bucket_moment = 0.0;
        for (t, p) in self.iter() {
            bucket_mass += p;
            bucket_moment += t as f64 * p;
            if bucket_mass + 1e-15 >= target && pairs.len() < k - 1 {
                pairs.push(((bucket_moment / bucket_mass).round() as i64, bucket_mass));
                bucket_mass = 0.0;
                bucket_moment = 0.0;
            }
        }
        if bucket_mass > 0.0 {
            pairs.push(((bucket_moment / bucket_mass).round() as i64, bucket_mass));
        }
        // Bucket means are nondecreasing, so the dense rebuild mirrors
        // `from_pairs` exactly (same encounter order at duplicate ticks).
        let lo = pairs.first().expect("mass positive").0;
        let hi = pairs.last().expect("mass positive").0;
        out.probs.clear();
        out.probs.resize((hi - lo) as usize + 1, 0.0);
        for &(t, p) in pairs.iter() {
            out.probs[(t - lo) as usize] += p;
        }
        out.origin = lo;
        out.trim();
        out.debug_check();
    }

    /// k-ary statistical maximum of every **non-empty** group in
    /// `groups` (latest-arrival combine), written into `out`.
    ///
    /// Semantics match the pairwise fold used by gate-input combining
    /// (empty fanin groups are skipped, not poisoning) and the result is
    /// bit-identical to `fold(g₀.max(g₁).max(g₂)…)`. Like
    /// [`min_k_into`](DiscreteDist::min_k_into) this ping-pongs the fold
    /// through two arena slabs: profiling the conditioning recursion
    /// showed the tight two-operand [`max_into`](DiscreteDist::max_into)
    /// window loop beats the one-pass streaming walk
    /// ([`max_k_streaming_into`](DiscreteDist::max_k_streaming_into)),
    /// whose fold-faithful span starts at the *earliest* origin and pays
    /// a per-tick branch per input.
    pub fn max_k_into(groups: &[&DiscreteDist], out: &mut DiscreteDist, scratch: &mut DistScratch) {
        let m = groups.iter().filter(|g| !g.is_empty()).count();
        let mut nonempty = groups.iter().copied().filter(|g| !g.is_empty());
        match m {
            0 => out.clear(),
            1 => out.copy_from(nonempty.next().expect("m == 1")),
            2 => {
                let a = nonempty.next().expect("m == 2");
                let b = nonempty.next().expect("m == 2");
                a.max_into(b, out);
            }
            _ => {
                let first = nonempty.next().expect("m >= 3");
                let second = nonempty.next().expect("m >= 3");
                let mut a = scratch.take();
                let mut b = scratch.take();
                first.max_into(second, &mut a);
                let mut src_is_a = true;
                for (idx, g) in nonempty.enumerate() {
                    let last = idx == m - 3;
                    if src_is_a {
                        a.max_into(g, if last { &mut *out } else { &mut b });
                    } else {
                        b.max_into(g, if last { &mut *out } else { &mut a });
                    }
                    src_is_a = !src_is_a;
                }
                scratch.put(a);
                scratch.put(b);
            }
        }
    }

    /// The one-pass streaming k-ary maximum: walks every fanin CDF
    /// simultaneously over the union span, maintaining one running
    /// prefix-sum per fold level.
    ///
    /// Bit-identical to [`max_k_into`](DiscreteDist::max_k_into) (ticks
    /// streamed before a fold level's pair window emit exact zeros there,
    /// and adding 0.0 never changes an f64) but measured *slower* on the
    /// analyzer's workloads — each tick pays a bounds-checked `prob_at`
    /// per input over a wider span. Kept as the reference implementation
    /// and benchmarked against the fold in `BENCH_kernels.json`.
    pub fn max_k_streaming_into(
        groups: &[&DiscreteDist],
        out: &mut DiscreteDist,
        scratch: &mut DistScratch,
    ) {
        let m = groups.iter().filter(|g| !g.is_empty()).count();
        if m == 0 {
            out.clear();
            return;
        }
        if m == 1 {
            let g = groups
                .iter()
                .copied()
                .find(|g| !g.is_empty())
                .expect("m == 1");
            out.copy_from(g);
            return;
        }
        // Stream from the earliest origin: every fold level's pair window
        // starts at or after it, and ticks streamed before a level's
        // window emit exact zeros there (adding 0.0 never changes an f64),
        // so starting early cannot perturb any level's prefix sums.
        let lo = groups
            .iter()
            .filter(|g| !g.is_empty())
            .map(|g| g.origin)
            .min()
            .expect("m >= 2");
        let hi = groups
            .iter()
            .filter(|g| !g.is_empty())
            .map(|g| g.max_tick().expect("non-empty"))
            .max()
            .expect("m >= 2");
        let n = (hi - lo + 1) as usize;
        let mut slab = scratch.take_floats();
        slab.resize(3 * m, 0.0);
        let (f, rest) = slab.split_at_mut(m);
        let (facc, prev) = rest.split_at_mut(m);
        out.probs.clear();
        out.probs.resize(n, 0.0);
        for i in 0..n {
            let t = lo + i as i64;
            // prev_f carries the running CDF of the fold-so-far
            // (A_{j-1}); f[j] is input j's running CDF. Emitting
            // p = clamp(F_{A_{j-1}}·F_j − prev) per level reproduces the
            // pairwise `max` loop exactly: streamed entries outside each
            // pair's window are exact zeros, and adding 0.0 never
            // changes an f64.
            let mut prev_f = 0.0;
            for (j, g) in groups.iter().copied().filter(|g| !g.is_empty()).enumerate() {
                f[j] += g.prob_at(t);
                if j == 0 {
                    prev_f = f[0];
                } else {
                    let cur = prev_f * f[j];
                    let p = (cur - prev[j]).max(0.0);
                    prev[j] = cur;
                    facc[j] += p;
                    prev_f = facc[j];
                    if j == m - 1 {
                        out.probs[i] = p;
                    }
                }
            }
        }
        out.origin = lo;
        out.trim();
        out.debug_check();
        scratch.put_floats(slab);
    }

    /// k-ary statistical minimum of every **non-empty** group in
    /// `groups` (earliest-arrival combine), written into `out`.
    ///
    /// Unlike [`max_k_into`](DiscreteDist::max_k_into), the min fold is
    /// inherently level-sequential — level j+1's survival product needs
    /// level j's *final total mass* before its first tick — so this is a
    /// ping-pong pairwise fold over two arena slabs: zero-allocation at
    /// steady state and trivially bit-identical to the fold.
    pub fn min_k_into(groups: &[&DiscreteDist], out: &mut DiscreteDist, scratch: &mut DistScratch) {
        let m = groups.iter().filter(|g| !g.is_empty()).count();
        let mut nonempty = groups.iter().copied().filter(|g| !g.is_empty());
        match m {
            0 => out.clear(),
            1 => out.copy_from(nonempty.next().expect("m == 1")),
            2 => {
                let a = nonempty.next().expect("m == 2");
                let b = nonempty.next().expect("m == 2");
                a.min_into(b, out);
            }
            _ => {
                let first = nonempty.next().expect("m >= 3");
                let second = nonempty.next().expect("m >= 3");
                let mut a = scratch.take();
                let mut b = scratch.take();
                first.min_into(second, &mut a);
                let mut src_is_a = true;
                for (idx, g) in nonempty.enumerate() {
                    let last = idx == m - 3;
                    if src_is_a {
                        a.min_into(g, if last { &mut *out } else { &mut b });
                    } else {
                        b.min_into(g, if last { &mut *out } else { &mut a });
                    }
                    src_is_a = !src_is_a;
                }
                scratch.put(a);
                scratch.put(b);
            }
        }
    }

    /// Removes leading/trailing zero (or sub-epsilon) entries.
    fn trim(&mut self) {
        let first = self.probs.iter().position(|&p| p > TRIM_EPS);
        match first {
            None => {
                self.probs.clear();
                self.origin = 0;
            }
            Some(first) => {
                let last = self
                    .probs
                    .iter()
                    .rposition(|&p| p > TRIM_EPS)
                    .expect("some entry positive");
                self.probs.drain(last + 1..);
                self.probs.drain(..first);
                self.origin += first as i64;
            }
        }
    }

    /// Debug-mode invariant checks.
    fn debug_check(&self) {
        debug_assert!(
            self.probs.iter().all(|p| p.is_finite() && *p >= 0.0),
            "probabilities must be finite and non-negative: {self:?}"
        );
        debug_assert!(
            self.total_mass() <= 1.0 + MASS_EPS,
            "mass {} exceeds one",
            self.total_mass()
        );
        if !self.probs.is_empty() {
            debug_assert!(self.probs[0] > 0.0 && *self.probs.last().expect("non-empty") > 0.0);
        }
    }
}

/// Precomputed cumulative table for repeated sampling from one
/// [`DiscreteDist`]; see [`DiscreteDist::sampler`].
#[derive(Debug, Clone)]
pub struct TickSampler {
    origin: i64,
    total: f64,
    cdf: Vec<f64>,
}

impl TickSampler {
    /// Draws one tick in O(log n).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> i64 {
        let target: f64 = rng.random::<f64>() * self.total;
        let idx = self.cdf.partition_point(|&c| c <= target);
        self.origin + idx.min(self.cdf.len() - 1) as i64
    }
}

impl FromIterator<(i64, f64)> for DiscreteDist {
    fn from_iter<I: IntoIterator<Item = (i64, f64)>>(iter: I) -> Self {
        DiscreteDist::from_pairs(iter)
    }
}

impl std::fmt::Display for DiscreteDist {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_empty() {
            return write!(f, "{{}}");
        }
        write!(f, "{{")?;
        let mut first = true;
        for (t, p) in self.iter() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{t}: {p:.4}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn point_mass() {
        let d = DiscreteDist::point(5);
        assert_eq!(d.support_len(), 1);
        assert!(close(d.prob_at(5), 1.0));
        assert!(close(d.mean_ticks(), 5.0));
        assert!(close(d.variance_ticks(), 0.0));
    }

    #[test]
    fn from_pairs_merges_duplicates() {
        let d = DiscreteDist::from_pairs([(3, 0.25), (3, 0.25), (5, 0.5)]);
        assert!(close(d.prob_at(3), 0.5));
        assert!(close(d.total_mass(), 1.0));
        assert_eq!(d.support_len(), 2);
        assert_eq!(d.support_span(), 3);
    }

    #[test]
    fn from_ratios_fig1() {
        let d = DiscreteDist::from_ratios([(10, 1), (13, 3), (14, 3), (21, 3)]);
        assert!(close(d.prob_at(10), 0.1));
        assert!(close(d.prob_at(13), 0.3));
        assert!(close(d.prob_at(21), 0.3));
        assert!(close(d.total_mass(), 1.0));
    }

    #[test]
    fn shift_and_scale() {
        let mut d = DiscreteDist::from_pairs([(0, 0.5), (2, 0.5)]);
        d.shift(3);
        assert_eq!(d.min_tick(), Some(3));
        assert_eq!(d.max_tick(), Some(5));
        d.scale(0.5);
        assert!(close(d.total_mass(), 0.5));
        d.scale(0.0);
        assert!(d.is_empty());
    }

    #[test]
    fn accumulate_is_group_operation() {
        let mut a = DiscreteDist::from_pairs([(1, 0.2), (3, 0.3)]);
        let b = DiscreteDist::from_pairs([(3, 0.1), (6, 0.4)]);
        a.accumulate(&b);
        assert!(close(a.prob_at(1), 0.2));
        assert!(close(a.prob_at(3), 0.4));
        assert!(close(a.prob_at(6), 0.4));
        assert!(close(a.total_mass(), 1.0));
    }

    #[test]
    fn accumulate_into_empty() {
        let mut a = DiscreteDist::empty();
        let b = DiscreteDist::point(4);
        a.accumulate(&b);
        assert_eq!(a, b);
        let mut c = b.clone();
        c.accumulate(&DiscreteDist::empty());
        assert_eq!(c, b);
    }

    #[test]
    fn convolve_points() {
        let a = DiscreteDist::point(3);
        let b = DiscreteDist::point(4);
        assert_eq!(a.convolve(&b), DiscreteDist::point(7));
    }

    #[test]
    fn convolve_fig4_shape() {
        // One event group {t: 1/2, t+2: 1/2} through a two-point delay
        // {1: 1/2, 2: 1/2}: shift-with-scaling + grouping.
        let arr = DiscreteDist::from_pairs([(10, 0.5), (12, 0.5)]);
        let delay = DiscreteDist::from_pairs([(1, 0.5), (2, 0.5)]);
        let out = arr.convolve(&delay);
        assert!(close(out.prob_at(11), 0.25));
        assert!(close(out.prob_at(12), 0.25));
        assert!(close(out.prob_at(13), 0.25));
        assert!(close(out.prob_at(14), 0.25));
        assert!(close(out.total_mass(), 1.0));
    }

    #[test]
    fn convolve_commutes() {
        let a = DiscreteDist::from_pairs([(0, 0.3), (1, 0.2), (5, 0.5)]);
        let b = DiscreteDist::from_pairs([(2, 0.9), (3, 0.1)]);
        assert_eq!(a.convolve(&b), b.convolve(&a));
    }

    #[test]
    fn max_of_points() {
        let a = DiscreteDist::point(3);
        let b = DiscreteDist::point(7);
        assert_eq!(a.max(&b), DiscreteDist::point(7));
        assert_eq!(a.min(&b), DiscreteDist::point(3));
    }

    #[test]
    fn max_matches_enumeration() {
        let a = DiscreteDist::from_pairs([(1, 0.25), (4, 0.75)]);
        let b = DiscreteDist::from_pairs([(2, 0.6), (4, 0.4)]);
        let m = a.max(&b);
        // max=2: a=1,b=2 -> 0.15 ; max=4: rest.
        assert!(close(m.prob_at(2), 0.25 * 0.6));
        assert!(close(m.prob_at(4), 1.0 - 0.25 * 0.6));
        assert!(close(m.total_mass(), 1.0));
    }

    #[test]
    fn min_matches_enumeration() {
        let a = DiscreteDist::from_pairs([(1, 0.25), (4, 0.75)]);
        let b = DiscreteDist::from_pairs([(2, 0.6), (4, 0.4)]);
        let m = a.min(&b);
        // min=1: a=1 (any b) -> 0.25; min=2: a=4,b=2 -> 0.45; min=4: 0.3.
        assert!(close(m.prob_at(1), 0.25));
        assert!(close(m.prob_at(2), 0.75 * 0.6));
        assert!(close(m.prob_at(4), 0.75 * 0.4));
        assert!(close(m.total_mass(), 1.0));
    }

    #[test]
    fn min_disjoint_supports() {
        let a = DiscreteDist::from_pairs([(1, 0.5), (2, 0.5)]);
        let b = DiscreteDist::from_pairs([(10, 1.0)]);
        assert_eq!(a.min(&b), a);
        assert_eq!(b.min(&a), a);
        assert_eq!(a.max(&b), b);
    }

    #[test]
    fn subprobability_combining_mass_products() {
        let a = DiscreteDist::from_pairs([(1, 0.4)]); // mass 0.4
        let b = DiscreteDist::from_pairs([(2, 0.5)]); // mass 0.5
        assert!(close(a.max(&b).total_mass(), 0.2));
        assert!(close(a.min(&b).total_mass(), 0.2));
        assert!(close(a.convolve(&b).total_mass(), 0.2));
    }

    #[test]
    fn truncate_below_reports_dropped_mass() {
        let mut d = DiscreteDist::from_pairs([(0, 0.005), (1, 0.495), (2, 0.5)]);
        let dropped = d.truncate_below(0.01);
        assert!(close(dropped, 0.005));
        assert_eq!(d.min_tick(), Some(1));
        assert!(close(d.total_mass(), 0.995));
        d.normalize();
        assert!(close(d.total_mass(), 1.0));
    }

    #[test]
    fn cdf_and_quantile() {
        let d = DiscreteDist::from_pairs([(1, 0.2), (3, 0.5), (4, 0.3)]);
        assert!(close(d.cdf_at(0), 0.0));
        assert!(close(d.cdf_at(1), 0.2));
        assert!(close(d.cdf_at(2), 0.2));
        assert!(close(d.cdf_at(3), 0.7));
        assert!(close(d.cdf_at(100), 1.0));
        assert_eq!(d.quantile(0.2), Some(1));
        assert_eq!(d.quantile(0.5), Some(3));
        assert_eq!(d.quantile(1.0), Some(4));
        assert_eq!(d.quantile(0.0), None);
    }

    #[test]
    fn quantile_of_scaled_subprobability_group() {
        // Conditioned branches carry mass ≪ 1. An absolute tolerance in
        // the quantile search dominates `q * total_mass` at this scale and
        // collapses the quantile to the first tick; the tolerance must be
        // relative to the group's mass.
        let full = DiscreteDist::from_pairs([(0, 0.499), (10, 0.501)]);
        let tiny = full.scaled(1e-12);
        for q in [0.4, 0.5, 0.75, 0.9, 1.0] {
            assert_eq!(
                tiny.quantile(q),
                full.quantile(q),
                "q={q}: scaling must not move the quantile"
            );
        }
        assert_eq!(tiny.quantile(0.5), Some(10));
        // Even deeper sub-probability masses keep exact quantiles.
        let dust = full.scaled(1e-30);
        assert_eq!(dust.quantile(0.5), Some(10));
        assert_eq!(dust.quantile(0.2), Some(0));
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn from_pairs_rejects_negative_probability_in_release() {
        let _ = DiscreteDist::from_pairs([(0, 0.5), (1, -0.25)]);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn from_pairs_rejects_nan_probability_in_release() {
        let _ = DiscreteDist::from_pairs([(0, f64::NAN)]);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn event_rejects_infinite_probability_in_release() {
        let _ = DiscreteDist::event(3, f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn from_dense_rejects_negative_probability_in_release() {
        let _ = DiscreteDist::from_dense(0, vec![0.5, -0.1, 0.5]);
    }

    #[test]
    fn try_constructors_return_typed_errors() {
        assert!(matches!(
            DiscreteDist::try_event(0, f64::NAN),
            Err(DistError::BadProbability { .. })
        ));
        assert!(matches!(
            DiscreteDist::try_event(0, -0.5),
            Err(DistError::BadProbability { .. })
        ));
        assert!(matches!(
            DiscreteDist::try_from_pairs([(0, 0.5), (1, f64::INFINITY)]),
            Err(DistError::BadProbability { .. })
        ));
        assert!(matches!(
            DiscreteDist::try_from_dense(0, vec![0.1, -0.1]),
            Err(DistError::BadProbability { .. })
        ));
        // The happy paths match the panicking constructors bit for bit.
        assert_eq!(
            DiscreteDist::try_from_pairs([(3, 0.25), (9, 0.75)]).unwrap(),
            DiscreteDist::from_pairs([(3, 0.25), (9, 0.75)])
        );
        assert_eq!(
            DiscreteDist::try_event(5, 0.5).unwrap(),
            DiscreteDist::event(5, 0.5)
        );
    }

    #[test]
    fn try_shift_guards_tick_overflow() {
        let mut d = DiscreteDist::from_pairs([(0, 0.5), (4, 0.5)]);
        assert!(d.try_shift(3).is_ok());
        assert_eq!(d.min_tick(), Some(3));
        // Overflow of the origin itself.
        let err = d.try_shift(i64::MAX).unwrap_err();
        assert!(matches!(err, DistError::TickOverflow { .. }));
        assert_eq!(d.min_tick(), Some(3), "unchanged on error");
        // Overflow of the window's last tick only: origin fits, end does
        // not.
        let mut edge = DiscreteDist::from_pairs([(0, 0.5), (4, 0.5)]);
        assert!(edge.try_shift(i64::MAX - 2).is_err());
        assert_eq!(edge.min_tick(), Some(0), "unchanged on error");
    }

    #[test]
    fn try_scale_validates_in_release() {
        let mut d = DiscreteDist::from_pairs([(0, 1.0)]);
        assert!(matches!(
            d.try_scale(f64::NAN),
            Err(DistError::BadProbability { .. })
        ));
        assert!(close(d.total_mass(), 1.0), "unchanged on error");
        d.try_scale(0.5).unwrap();
        assert!(close(d.total_mass(), 0.5));
    }

    #[test]
    fn moments() {
        let d = DiscreteDist::from_pairs([(0, 0.5), (10, 0.5)]);
        assert!(close(d.mean_ticks(), 5.0));
        assert!(close(d.variance_ticks(), 25.0));
        assert!(close(d.std_ticks(), 5.0));
    }

    #[test]
    fn moments_of_subprobability_are_normalized() {
        let full = DiscreteDist::from_pairs([(0, 0.5), (10, 0.5)]);
        let half = full.scaled(0.5);
        assert!(close(half.mean_ticks(), full.mean_ticks()));
        assert!(close(half.variance_ticks(), full.variance_ticks()));
    }

    #[test]
    fn sampler_matches_linear_sampling_statistics() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let d = DiscreteDist::from_pairs([(0, 0.1), (3, 0.2), (4, 0.3), (10, 0.4)]);
        let sampler = d.sampler().expect("non-empty");
        let mut rng = StdRng::seed_from_u64(5);
        let n = 40_000;
        let mut counts = std::collections::HashMap::new();
        for _ in 0..n {
            *counts.entry(sampler.sample(&mut rng)).or_insert(0usize) += 1;
        }
        for (t, p) in d.iter() {
            let got = *counts.get(&t).expect("all support hit") as f64 / n as f64;
            assert!((got - p).abs() < 0.02, "tick {t}: {got} vs {p}");
        }
        assert!(DiscreteDist::empty().sampler().is_none());
    }

    #[test]
    fn sample_hits_support() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let d = DiscreteDist::from_pairs([(2, 0.25), (7, 0.75)]);
        let mut rng = StdRng::seed_from_u64(3);
        let mut seven = 0;
        let n = 10_000;
        for _ in 0..n {
            match d.sample(&mut rng).expect("non-empty") {
                2 => {}
                7 => seven += 1,
                other => panic!("sampled {other} outside support"),
            }
        }
        let frac = seven as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.02, "P(7) sampled at {frac}");
    }

    #[test]
    fn l1_distance_bounds() {
        let a = DiscreteDist::from_pairs([(0, 1.0)]);
        let b = DiscreteDist::from_pairs([(5, 1.0)]);
        assert!(close(a.l1_distance(&a), 0.0));
        assert!(close(a.l1_distance(&b), 2.0));
        assert!(close(
            DiscreteDist::empty().l1_distance(&DiscreteDist::empty()),
            0.0
        ));
        assert!(close(a.l1_distance(&DiscreteDist::empty()), 2.0));
    }

    #[test]
    fn coarsened_preserves_mass_and_mean() {
        let d = DiscreteDist::from_pairs((0..40).map(|t| (t, 0.025)));
        let c = d.coarsened(5);
        assert!(c.support_len() <= 5);
        assert!(close(c.total_mass(), d.total_mass()));
        assert!((c.mean_ticks() - d.mean_ticks()).abs() < 1.0);
        // Small distributions pass through unchanged.
        let small = DiscreteDist::from_pairs([(1, 0.5), (9, 0.5)]);
        assert_eq!(small.coarsened(5), small);
    }

    #[test]
    fn coarsened_to_one_is_mean_point() {
        let d = DiscreteDist::from_pairs([(0, 0.5), (10, 0.5)]);
        let c = d.coarsened(1);
        assert_eq!(c.support_len(), 1);
        assert_eq!(c.min_tick(), Some(5));
        assert!(close(c.total_mass(), 1.0));
    }

    #[test]
    fn display_is_never_empty() {
        assert_eq!(format!("{}", DiscreteDist::empty()), "{}");
        let d = DiscreteDist::point(3);
        assert!(format!("{d}").contains("3"));
    }

    #[test]
    fn empty_interactions() {
        let e = DiscreteDist::empty();
        let d = DiscreteDist::point(1);
        assert!(e.convolve(&d).is_empty());
        assert!(e.max(&d).is_empty());
        assert!(e.min(&d).is_empty());
        assert_eq!(e.min_tick(), None);
        assert_eq!(e.quantile(0.5), None);
    }
}
