//! Running statistics, confidence bounds and the paper's error metrics.
//!
//! The DAC 2001 evaluation (§4) reports two derived quantities that live
//! here so every crate shares one definition:
//!
//! * the Monte Carlo *sample-mean error bound* `c·s / (√n · m)`, where `c`
//!   is a Student-t critical value at the chosen confidence level
//!   ([`mc_error_bound`]),
//! * the per-circuit *error percentage* `M_e + 3σ_e` over the per-node
//!   error percentages of all signal arrival times ([`ErrorSummary`]).

use serde::{Deserialize, Serialize};

/// Numerically stable (Welford) accumulator for mean and variance.
///
/// # Example
///
/// ```
/// use pep_dist::stats::Running;
///
/// let mut r = Running::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     r.push(x);
/// }
/// assert_eq!(r.count(), 8);
/// assert!((r.mean() - 5.0).abs() < 1e-12);
/// assert!((r.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Running {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Running {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Running::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Merges another accumulator into this one (Chan's parallel update).
    pub fn merge(&mut self, other: &Running) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance `Σ(x−m)²/n` (0 when fewer than 1 observation).
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Unbiased sample variance `Σ(x−m)²/(n−1)` (0 when fewer than 2).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn population_std(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample standard deviation.
    pub fn sample_std(&self) -> f64 {
        self.sample_variance().sqrt()
    }
}

impl Extend<f64> for Running {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for Running {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut r = Running::new();
        r.extend(iter);
        r
    }
}

/// Confidence levels for Student-t critical values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Confidence {
    /// 90% two-sided confidence.
    P90,
    /// 95% two-sided confidence.
    P95,
    /// 99% two-sided confidence (the paper's γ = 0.99).
    P99,
}

/// Two-sided Student-t critical values for small degrees of freedom,
/// indexed `[dof-1]`, for 90/95/99% confidence.
const T_TABLE_90: [f64; 30] = [
    6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812, 1.796, 1.782, 1.771,
    1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725, 1.721, 1.717, 1.714, 1.711, 1.708, 1.706,
    1.703, 1.701, 1.699, 1.697,
];
const T_TABLE_95: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];
const T_TABLE_99: [f64; 30] = [
    63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169, 3.106, 3.055, 3.012,
    2.977, 2.947, 2.921, 2.898, 2.878, 2.861, 2.845, 2.831, 2.819, 2.807, 2.797, 2.787, 2.779,
    2.771, 2.763, 2.756, 2.750,
];

/// Asymptotic (normal) two-sided critical values for large dof.
const Z_90: f64 = 1.645;
const Z_95: f64 = 1.960;
const Z_99: f64 = 2.576;

/// Anchor rows `(dof, c90, c95, c99)` covering the 31–120 dof window.
/// Jumping from the dof=30 table entry straight to the normal limit
/// under-covers by up to ~6% exactly where quick Monte Carlo runs live;
/// interpolating through the standard 40/60/120 anchor rows keeps the
/// bound within table accuracy everywhere.
const T_ANCHORS: [(u64, f64, f64, f64); 4] = [
    (30, 1.697, 2.042, 2.750),
    (40, 1.684, 2.021, 2.704),
    (60, 1.671, 2.000, 2.660),
    (120, 1.658, 1.980, 2.617),
];

/// Two-sided Student-t critical value `c` with `P(|T| <= c) = conf`.
///
/// Exact table values for `dof <= 30`; for larger dof, linear
/// interpolation in `1/dof` through the standard 40/60/120 anchor rows
/// and on toward the normal limit. The result is continuous and
/// monotonically non-increasing in `dof`, and within ordinary t-table
/// accuracy (±0.001) everywhere — adequate for the Monte Carlo
/// convergence bound at any run count.
///
/// # Panics
///
/// Panics if `dof` is zero.
pub fn student_t_critical(conf: Confidence, dof: u64) -> f64 {
    assert!(dof > 0, "degrees of freedom must be positive");
    let (table, z) = match conf {
        Confidence::P90 => (&T_TABLE_90, Z_90),
        Confidence::P95 => (&T_TABLE_95, Z_95),
        Confidence::P99 => (&T_TABLE_99, Z_99),
    };
    if dof <= 30 {
        return table[(dof - 1) as usize];
    }
    let pick = |&(d, c90, c95, c99): &(u64, f64, f64, f64)| -> (f64, f64) {
        let c = match conf {
            Confidence::P90 => c90,
            Confidence::P95 => c95,
            Confidence::P99 => c99,
        };
        (1.0 / d as f64, c)
    };
    // Interpolate linearly in 1/dof between the bracketing anchors; the
    // t quantile is nearly affine in 1/dof, so this tracks the exact
    // values to the table's own precision.
    let x = 1.0 / dof as f64;
    for pair in T_ANCHORS.windows(2) {
        let (x_hi, c_hi) = pick(&pair[0]); // smaller dof => larger 1/dof
        let (x_lo, c_lo) = pick(&pair[1]);
        if x >= x_lo {
            return c_lo + (c_hi - c_lo) * (x - x_lo) / (x_hi - x_lo);
        }
    }
    // Beyond the last anchor: interpolate toward the normal limit at
    // 1/dof = 0.
    let (x_last, c_last) = pick(T_ANCHORS.last().expect("non-empty"));
    z + (c_last - z) * x / x_last
}

/// The paper's Monte Carlo sample-mean relative error bound `c·s / (√n·m)`
/// (§4): `s` sample standard deviation, `m` sample mean, `n` run count and
/// `c` the Student-t critical value for the requested confidence.
///
/// Returns `f64::INFINITY` when the mean is zero or fewer than two samples
/// exist.
pub fn mc_error_bound(stats: &Running, conf: Confidence) -> f64 {
    if stats.count() < 2 || stats.mean() == 0.0 {
        return f64::INFINITY;
    }
    let c = student_t_critical(conf, stats.count() - 1);
    c * stats.sample_std() / ((stats.count() as f64).sqrt() * stats.mean().abs())
}

/// Aggregates per-node error percentages into the paper's reported
/// error metric.
///
/// The paper (§4): *"all error percentages used in this paper are
/// `M_e + 3σ_e`, where `M_e` and `σ_e` are the mean and the [standard
/// deviation] of error percentages of signal arrival times of all signal
/// nodes in the circuit"*.
///
/// # Example
///
/// ```
/// use pep_dist::stats::ErrorSummary;
///
/// let mut e = ErrorSummary::new();
/// e.push_pair(10.0, 10.1); // reference, measured
/// e.push_pair(20.0, 19.9);
/// assert!(e.report_percent() > 0.0);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ErrorSummary {
    errors: Running,
    worst: f64,
}

impl ErrorSummary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        ErrorSummary::default()
    }

    /// Records the absolute relative error (in percent) between a reference
    /// and a measured value. Nodes with a zero reference are skipped (they
    /// carry no timing information).
    pub fn push_pair(&mut self, reference: f64, measured: f64) {
        if reference == 0.0 || !reference.is_finite() || !measured.is_finite() {
            return;
        }
        let pct = ((measured - reference) / reference).abs() * 100.0;
        self.errors.push(pct);
        if pct > self.worst {
            self.worst = pct;
        }
    }

    /// Number of node pairs recorded.
    pub fn count(&self) -> u64 {
        self.errors.count()
    }

    /// Mean of the per-node error percentages (`M_e`).
    pub fn mean_percent(&self) -> f64 {
        self.errors.mean()
    }

    /// Standard deviation of the per-node error percentages (`σ_e`).
    pub fn std_percent(&self) -> f64 {
        self.errors.population_std()
    }

    /// Worst per-node error percentage observed.
    pub fn worst_percent(&self) -> f64 {
        self.worst
    }

    /// The paper's reported error percentage, `M_e + 3σ_e` — covers more
    /// than 99% of nodes by its 3σ range.
    pub fn report_percent(&self) -> f64 {
        self.mean_percent() + 3.0 * self.std_percent()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_two_pass() {
        let xs: Vec<f64> = (0..100)
            .map(|i| (i as f64 * 0.37).sin() * 5.0 + 3.0)
            .collect();
        let r: Running = xs.iter().copied().collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!((r.mean() - mean).abs() < 1e-10);
        assert!((r.population_variance() - var).abs() < 1e-10);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64 * 1.3 - 7.0).collect();
        let (a, b) = xs.split_at(17);
        let mut left: Running = a.iter().copied().collect();
        let right: Running = b.iter().copied().collect();
        left.merge(&right);
        let all: Running = xs.iter().copied().collect();
        assert_eq!(left.count(), all.count());
        assert!((left.mean() - all.mean()).abs() < 1e-10);
        assert!((left.population_variance() - all.population_variance()).abs() < 1e-10);
    }

    #[test]
    fn merge_with_empty() {
        let mut a = Running::new();
        let b: Running = [1.0, 2.0, 3.0].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.count(), 3);
        let mut c = b;
        c.merge(&Running::new());
        assert_eq!(c.count(), 3);
    }

    #[test]
    fn t_critical_values() {
        assert!((student_t_critical(Confidence::P99, 1) - 63.657).abs() < 1e-9);
        assert!((student_t_critical(Confidence::P95, 10) - 2.228).abs() < 1e-9);
        // Large dof approaches the normal quantile (but from above, never
        // dropping below it).
        assert!((student_t_critical(Confidence::P99, 5000) - 2.576).abs() < 2e-3);
        assert!(student_t_critical(Confidence::P99, 5000) >= 2.576);
        assert!(student_t_critical(Confidence::P99, 5) > student_t_critical(Confidence::P95, 5));
    }

    #[test]
    fn t_critical_anchor_rows_exact() {
        // The standard table rows the interpolation is pinned to.
        assert!((student_t_critical(Confidence::P99, 40) - 2.704).abs() < 1e-9);
        assert!((student_t_critical(Confidence::P99, 60) - 2.660).abs() < 1e-9);
        assert!((student_t_critical(Confidence::P99, 120) - 2.617).abs() < 1e-9);
        assert!((student_t_critical(Confidence::P95, 40) - 2.021).abs() < 1e-9);
        assert!((student_t_critical(Confidence::P90, 60) - 1.671).abs() < 1e-9);
    }

    #[test]
    fn t_critical_covers_31_to_120_window() {
        // The regression this table extension fixes: dof 31+ used to drop
        // straight to the normal limit, under-covering the 31–100 window
        // (e.g. dof 31 at 99%: 2.744 exact vs 2.576 normal, ~6% short).
        let c31 = student_t_critical(Confidence::P99, 31);
        assert!(
            (c31 - 2.744).abs() < 5e-3,
            "dof 31 interpolates near the exact 2.744, got {c31}"
        );
        assert!(c31 > 2.70, "must not collapse to the 2.576 normal limit");
        // Spot-check a textbook value inside the 60–120 bracket.
        let c100 = student_t_critical(Confidence::P99, 100);
        assert!((c100 - 2.626).abs() < 5e-3, "dof 100 ≈ 2.626, got {c100}");
    }

    #[test]
    fn t_critical_monotone_in_dof() {
        for conf in [Confidence::P90, Confidence::P95, Confidence::P99] {
            let mut prev = student_t_critical(conf, 1);
            for dof in 2..=2000 {
                let c = student_t_critical(conf, dof);
                assert!(
                    c <= prev + 1e-12,
                    "critical value must not increase with dof: {conf:?} dof {dof}: {c} > {prev}"
                );
                prev = c;
            }
        }
    }

    #[test]
    fn mc_bound_shrinks_with_runs() {
        // Same mean/std, different n.
        let mut small = Running::new();
        let mut large = Running::new();
        for i in 0..20 {
            small.push(if i % 2 == 0 { 9.0 } else { 11.0 });
        }
        for i in 0..2000 {
            large.push(if i % 2 == 0 { 9.0 } else { 11.0 });
        }
        let bs = mc_error_bound(&small, Confidence::P99);
        let bl = mc_error_bound(&large, Confidence::P99);
        assert!(bl < bs);
        assert!(bl < 0.01, "2000 runs of ±10% noise bound at {bl}");
    }

    #[test]
    fn mc_bound_degenerate_cases() {
        let empty = Running::new();
        assert!(mc_error_bound(&empty, Confidence::P99).is_infinite());
        let zero_mean: Running = [-1.0, 1.0].into_iter().collect();
        assert!(mc_error_bound(&zero_mean, Confidence::P99).is_infinite());
    }

    #[test]
    fn error_summary_metric() {
        let mut e = ErrorSummary::new();
        e.push_pair(100.0, 101.0); // 1%
        e.push_pair(100.0, 99.0); // 1%
        e.push_pair(100.0, 103.0); // 3%
        assert_eq!(e.count(), 3);
        assert!((e.mean_percent() - 5.0 / 3.0).abs() < 1e-9);
        assert!((e.worst_percent() - 3.0).abs() < 1e-9);
        let sigma = e.std_percent();
        assert!((e.report_percent() - (5.0 / 3.0 + 3.0 * sigma)).abs() < 1e-9);
    }

    #[test]
    fn error_summary_skips_zero_reference() {
        let mut e = ErrorSummary::new();
        e.push_pair(0.0, 5.0);
        e.push_pair(f64::NAN, 5.0);
        e.push_pair(10.0, f64::NAN);
        assert_eq!(e.count(), 0);
    }
}
