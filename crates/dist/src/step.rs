use crate::DistError;
use serde::{Deserialize, Serialize};

/// The fixed *sampling step* (time unit) of the analysis.
///
/// The paper (§2.2) discretizes every delay random variable on a single
/// user-chosen time unit; the same unit is then used for all arrival-time
/// evaluations. `TimeStep` converts between physical time (`f64`, in the
/// library's delay units) and grid *ticks* (`i64`).
///
/// A smaller step yields more data points per distribution (higher accuracy,
/// slower analysis); this is the `N_s` knob of the paper's Fig. 8.
///
/// # Example
///
/// ```
/// use pep_dist::TimeStep;
///
/// let step = TimeStep::new(0.25)?;
/// assert_eq!(step.ticks_of(1.0), 4);
/// assert_eq!(step.time_of(4), 1.0);
/// # Ok::<(), pep_dist::DistError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct TimeStep(f64);

impl TimeStep {
    /// Creates a new time step.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::NonPositive`] if `step` is not strictly positive
    /// or [`DistError::NotFinite`] if it is NaN/infinite.
    pub fn new(step: f64) -> Result<Self, DistError> {
        if !step.is_finite() {
            return Err(DistError::NotFinite { what: "time step" });
        }
        if step <= 0.0 {
            return Err(DistError::NonPositive {
                what: "time step",
                value: step,
            });
        }
        Ok(TimeStep(step))
    }

    /// The step size in physical time units.
    #[inline]
    pub fn size(self) -> f64 {
        self.0
    }

    /// Converts a physical time to the nearest grid tick.
    #[inline]
    pub fn ticks_of(self, time: f64) -> i64 {
        (time / self.0).round() as i64
    }

    /// Converts a grid tick back to physical time.
    #[inline]
    pub fn time_of(self, tick: i64) -> f64 {
        tick as f64 * self.0
    }

    /// Converts a tick-domain quantity (e.g. a mean measured in ticks) to
    /// physical time without rounding.
    #[inline]
    pub fn time_of_f(self, ticks: f64) -> f64 {
        ticks * self.0
    }
}

impl Default for TimeStep {
    /// A unit step, so ticks and physical time coincide.
    fn default() -> Self {
        TimeStep(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_steps() {
        assert!(TimeStep::new(0.0).is_err());
        assert!(TimeStep::new(-1.0).is_err());
        assert!(TimeStep::new(f64::NAN).is_err());
        assert!(TimeStep::new(f64::INFINITY).is_err());
    }

    #[test]
    fn round_trips() {
        let s = TimeStep::new(0.5).unwrap();
        for t in -10..10 {
            assert_eq!(s.ticks_of(s.time_of(t)), t);
        }
    }

    #[test]
    fn rounds_to_nearest() {
        let s = TimeStep::new(1.0).unwrap();
        assert_eq!(s.ticks_of(1.4), 1);
        assert_eq!(s.ticks_of(1.6), 2);
        assert_eq!(s.ticks_of(-1.4), -1);
    }

    #[test]
    fn default_is_unit() {
        assert_eq!(TimeStep::default().size(), 1.0);
    }
}
