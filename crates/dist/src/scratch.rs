//! Reusable scratch arena for the allocation-free kernel layer.
//!
//! The conditioning recursion (paper §3.2–3.3) executes the propagation
//! primitives millions of times on small dense arrays. Allocating a fresh
//! `Vec<f64>` per call dominates the runtime, so the `*_into` kernels on
//! [`DiscreteDist`] draw their temporaries from a [`DistScratch`] instead:
//! a small pool of distribution slabs, float slabs and a pair-staging
//! buffer that are checked out, used, and returned — never freed mid-run.
//!
//! One arena belongs to one worker thread (it is `Send` but deliberately
//! not shared); threading a per-worker arena through the evaluation stack
//! keeps the zero-allocation property without any synchronization, and the
//! kernels' operation order is unchanged, preserving the analyzer's
//! bit-identical-across-thread-counts contract.

use crate::DiscreteDist;
use pep_obs::TraceBuffer;

/// A pool of reusable buffers for [`DiscreteDist`] kernel temporaries.
///
/// Buffers keep their capacity across [`take`]/[`put`] cycles, so a
/// steady-state workload (the supergate conditioning loop) performs no
/// heap allocations once every slab has grown to its working size.
///
/// # Example
///
/// ```
/// use pep_dist::{DiscreteDist, DistScratch};
///
/// let mut scratch = DistScratch::new();
/// let a = DiscreteDist::from_pairs([(0, 0.5), (3, 0.5)]);
/// let mut tmp = scratch.take();
/// a.convolve_into(&a, &mut tmp);
/// assert_eq!(tmp, a.convolve(&a));
/// scratch.put(tmp);
/// assert_eq!(scratch.checkouts(), 1);
/// ```
///
/// [`take`]: DistScratch::take
/// [`put`]: DistScratch::put
#[derive(Debug, Default)]
pub struct DistScratch {
    /// Idle distribution slabs (empty, capacity retained).
    pool: Vec<DiscreteDist>,
    /// Idle float slabs for k-ary combine CDF state.
    floats: Vec<Vec<f64>>,
    /// Staging buffer for [`DiscreteDist::coarsen_into`].
    pub(crate) pairs: Vec<(i64, f64)>,
    /// Total number of `take`/`take_floats` checkouts.
    checkouts: u64,
    /// Distribution slabs currently checked out.
    live: usize,
    /// High-water mark of simultaneously checked-out slabs.
    peak_live: usize,
    /// Span/kernel recorder for the worker this arena belongs to. Inert
    /// by default (`TraceBuffer::default()` — a span site is one byte
    /// compare); the analyzer wires a live buffer in for traced runs.
    /// It lives here because the arena is the one per-worker value
    /// already threaded through every kernel call site.
    pub trace: TraceBuffer,
}

impl DistScratch {
    /// An empty arena. Allocates nothing until a buffer is first used.
    pub fn new() -> Self {
        DistScratch::default()
    }

    /// Checks out an empty distribution slab (capacity retained from
    /// earlier use when available).
    pub fn take(&mut self) -> DiscreteDist {
        self.checkouts += 1;
        self.live += 1;
        self.peak_live = self.peak_live.max(self.live);
        self.pool.pop().unwrap_or_default()
    }

    /// Returns a slab to the pool. The slab is cleared; its capacity is
    /// kept for the next checkout.
    pub fn put(&mut self, mut d: DiscreteDist) {
        d.clear();
        self.live = self.live.saturating_sub(1);
        self.pool.push(d);
    }

    /// Checks out a float slab (cleared, capacity retained).
    pub(crate) fn take_floats(&mut self) -> Vec<f64> {
        self.checkouts += 1;
        let mut v = self.floats.pop().unwrap_or_default();
        v.clear();
        v
    }

    /// Returns a float slab to the pool.
    pub(crate) fn put_floats(&mut self, v: Vec<f64>) {
        self.floats.push(v);
    }

    /// Total number of buffer checkouts since construction (or the last
    /// [`reset_stats`](DistScratch::reset_stats)).
    ///
    /// This count depends only on the sequence of kernel calls, so summed
    /// across workers it is identical for every thread count.
    pub fn checkouts(&self) -> u64 {
        self.checkouts
    }

    /// High-water mark of simultaneously checked-out distribution slabs.
    pub fn slab_high_water(&self) -> usize {
        self.peak_live
    }

    /// Number of distribution slabs currently idle in the pool.
    pub fn pooled_slabs(&self) -> usize {
        self.pool.len()
    }

    /// Resets the checkout counters (the pooled buffers are kept).
    pub fn reset_stats(&mut self) {
        self.checkouts = 0;
        self.peak_live = self.live;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_put_recycles_capacity() {
        let mut s = DistScratch::new();
        let mut d = s.take();
        let src = DiscreteDist::from_pairs([(0, 0.25), (7, 0.75)]);
        d.copy_from(&src);
        s.put(d);
        let d2 = s.take();
        assert!(d2.is_empty(), "returned slabs must come back cleared");
        assert_eq!(s.checkouts(), 2);
        assert_eq!(s.slab_high_water(), 1);
    }

    #[test]
    fn high_water_tracks_concurrent_checkouts() {
        let mut s = DistScratch::new();
        let a = s.take();
        let b = s.take();
        let c = s.take();
        s.put(a);
        s.put(b);
        s.put(c);
        let d = s.take();
        s.put(d);
        assert_eq!(s.slab_high_water(), 3);
        assert_eq!(s.pooled_slabs(), 3);
        s.reset_stats();
        assert_eq!(s.checkouts(), 0);
        assert_eq!(s.slab_high_water(), 0);
    }
}
