//! Ablation of the paper's §3.3 heuristics on one circuit: each knob is
//! toggled in isolation against the default operating point, exposing
//! what every approximation buys.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pep_bench::bench_circuit;
use pep_core::{analyze, AnalysisConfig, HybridMcConfig, StemRanking};
use pep_netlist::generate::IscasProfile;
use std::hint::black_box;

fn configs() -> Vec<(&'static str, AnalysisConfig)> {
    vec![
        ("default", AnalysisConfig::default()),
        (
            "no_event_dropping",
            AnalysisConfig {
                min_event_prob: 0.0,
                ..AnalysisConfig::default()
            },
        ),
        (
            "no_stem_filter",
            AnalysisConfig {
                filter_stems: false,
                ..AnalysisConfig::default()
            },
        ),
        (
            "no_conditioning",
            AnalysisConfig {
                max_effective_stems: Some(0),
                ..AnalysisConfig::default()
            },
        ),
        ("two_stem", AnalysisConfig::two_stem()),
        (
            "depth_2",
            AnalysisConfig {
                supergate_depth: Some(2),
                ..AnalysisConfig::default()
            },
        ),
        (
            "depth_8",
            AnalysisConfig {
                supergate_depth: Some(8),
                ..AnalysisConfig::default()
            },
        ),
        (
            "sensitivity_ranking",
            AnalysisConfig {
                stem_ranking: StemRanking::Sensitivity,
                ..AnalysisConfig::default()
            },
        ),
        (
            "hybrid_mc",
            AnalysisConfig {
                hybrid_mc: Some(HybridMcConfig {
                    stem_threshold: 2,
                    runs: 1_000,
                    seed: 7,
                }),
                ..AnalysisConfig::default()
            },
        ),
    ]
}

fn bench_ablation(c: &mut Criterion) {
    let bench = bench_circuit(IscasProfile::S5378);
    let mut group = c.benchmark_group("ablation_s5378");
    group.sample_size(10);
    for (name, config) in configs() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &config, |b, config| {
            b.iter(|| black_box(analyze(&bench.netlist, &bench.timing, config)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
