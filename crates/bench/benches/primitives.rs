//! Micro-benchmarks of the event-propagation primitives (paper §2):
//! convolution (shift-with-scaling + group), statistical min/max
//! combining, event dropping, coarsening and discretization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pep_core::cell_eval::{combine, combine_into};
use pep_core::CombineMode;
use pep_dist::{discretize, ContinuousDist, DiscreteDist, DistScratch, TimeStep};
use std::hint::black_box;

/// A smooth n-point test distribution.
fn smooth(n: usize, origin: i64) -> DiscreteDist {
    let mid = n as f64 / 2.0;
    let weights: Vec<(i64, f64)> = (0..n)
        .map(|i| {
            let z = (i as f64 - mid) / (n as f64 / 6.0);
            (origin + i as i64, (-0.5 * z * z).exp())
        })
        .collect();
    let total: f64 = weights.iter().map(|&(_, w)| w).sum();
    DiscreteDist::from_pairs(weights.into_iter().map(|(t, w)| (t, w / total)))
}

fn bench_convolve(c: &mut Criterion) {
    let mut group = c.benchmark_group("convolve");
    for &(a, b) in &[(20usize, 20usize), (100, 20), (300, 20), (300, 100)] {
        let x = smooth(a, 0);
        let y = smooth(b, 5);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{a}x{b}")),
            &(x, y),
            |bench, (x, y)| bench.iter(|| black_box(x.convolve(y))),
        );
    }
    group.finish();
}

fn bench_combine(c: &mut Criterion) {
    let mut group = c.benchmark_group("combine");
    for &n in &[20usize, 100, 300] {
        let x = smooth(n, 0);
        let y = smooth(n, n as i64 / 4);
        group.bench_with_input(BenchmarkId::new("max", n), &(&x, &y), |bench, (x, y)| {
            bench.iter(|| black_box(x.max(y)))
        });
        group.bench_with_input(BenchmarkId::new("min", n), &(&x, &y), |bench, (x, y)| {
            bench.iter(|| black_box(x.min(y)))
        });
    }
    group.finish();
}

fn bench_truncate_and_coarsen(c: &mut Criterion) {
    let mut group = c.benchmark_group("shape");
    let wide = smooth(400, 0);
    group.bench_function("truncate_below_1e-5", |bench| {
        bench.iter(|| {
            let mut d = wide.clone();
            black_box(d.truncate_below(1e-5));
            d
        })
    });
    group.bench_function("coarsen_to_32", |bench| {
        bench.iter(|| black_box(wide.coarsened(32)))
    });
    group.finish();
}

fn bench_discretize(c: &mut Criterion) {
    let normal = ContinuousDist::normal(50.0, 3.0).expect("valid");
    let mut group = c.benchmark_group("discretize");
    for &samples in &[10usize, 20, 40] {
        let step = TimeStep::new(8.0 * 3.0 / samples as f64).expect("valid");
        group.bench_with_input(
            BenchmarkId::from_parameter(samples),
            &step,
            |bench, &step| bench.iter(|| black_box(discretize(&normal, step))),
        );
    }
    group.finish();
}

fn bench_into_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("into");
    let wide = smooth(300, 0);
    let cell = smooth(20, 5);
    let other = smooth(300, 75);
    let point = DiscreteDist::point(7);
    let mut out = DiscreteDist::empty();
    let mut scratch = DistScratch::new();
    group.bench_function("convolve_300x20", |bench| {
        bench.iter(|| {
            wide.convolve_into(&cell, &mut out);
            black_box(&out);
        })
    });
    group.bench_function("convolve_point_300x1", |bench| {
        bench.iter(|| {
            wide.convolve_into(&point, &mut out);
            black_box(&out);
        })
    });
    group.bench_function("max_300", |bench| {
        bench.iter(|| {
            wide.max_into(&other, &mut out);
            black_box(&out);
        })
    });
    group.bench_function("min_300", |bench| {
        bench.iter(|| {
            wide.min_into(&other, &mut out);
            black_box(&out);
        })
    });
    group.bench_function("accumulate_300", |bench| {
        bench.iter(|| {
            wide.accumulate_into(&other, &mut out);
            black_box(&out);
        })
    });
    group.bench_function("coarsen_to_32", |bench| {
        bench.iter(|| {
            wide.coarsen_into(32, &mut out, &mut scratch);
            black_box(&out);
        })
    });
    group.finish();
}

fn bench_kary_combine(c: &mut Criterion) {
    let mut group = c.benchmark_group("combine_kary");
    for &k in &[2usize, 4, 8] {
        let groups: Vec<DiscreteDist> = (0..k).map(|i| smooth(120, 10 * i as i64)).collect();
        let refs: Vec<&DiscreteDist> = groups.iter().collect();
        let mut out = DiscreteDist::empty();
        let mut scratch = DistScratch::new();
        group.bench_with_input(
            BenchmarkId::new("pairwise_latest", k),
            &refs,
            |bench, refs| {
                bench.iter(|| black_box(combine(refs.iter().copied(), CombineMode::Latest)))
            },
        );
        group.bench_with_input(BenchmarkId::new("kary_latest", k), &refs, |bench, refs| {
            bench.iter(|| {
                combine_into(refs, CombineMode::Latest, &mut out, &mut scratch);
                black_box(&out);
            })
        });
        let mut out = DiscreteDist::empty();
        let mut scratch = DistScratch::new();
        group.bench_with_input(
            BenchmarkId::new("pairwise_earliest", k),
            &refs,
            |bench, refs| {
                bench.iter(|| black_box(combine(refs.iter().copied(), CombineMode::Earliest)))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("kary_earliest", k),
            &refs,
            |bench, refs| {
                bench.iter(|| {
                    combine_into(refs, CombineMode::Earliest, &mut out, &mut scratch);
                    black_box(&out);
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_convolve,
    bench_combine,
    bench_truncate_and_coarsen,
    bench_discretize,
    bench_into_kernels,
    bench_kary_combine
);
criterion_main!(benches);
