//! Micro-benchmarks of the event-propagation primitives (paper §2):
//! convolution (shift-with-scaling + group), statistical min/max
//! combining, event dropping, coarsening and discretization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pep_dist::{discretize, ContinuousDist, DiscreteDist, TimeStep};
use std::hint::black_box;

/// A smooth n-point test distribution.
fn smooth(n: usize, origin: i64) -> DiscreteDist {
    let mid = n as f64 / 2.0;
    let weights: Vec<(i64, f64)> = (0..n)
        .map(|i| {
            let z = (i as f64 - mid) / (n as f64 / 6.0);
            (origin + i as i64, (-0.5 * z * z).exp())
        })
        .collect();
    let total: f64 = weights.iter().map(|&(_, w)| w).sum();
    DiscreteDist::from_pairs(weights.into_iter().map(|(t, w)| (t, w / total)))
}

fn bench_convolve(c: &mut Criterion) {
    let mut group = c.benchmark_group("convolve");
    for &(a, b) in &[(20usize, 20usize), (100, 20), (300, 20), (300, 100)] {
        let x = smooth(a, 0);
        let y = smooth(b, 5);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{a}x{b}")),
            &(x, y),
            |bench, (x, y)| bench.iter(|| black_box(x.convolve(y))),
        );
    }
    group.finish();
}

fn bench_combine(c: &mut Criterion) {
    let mut group = c.benchmark_group("combine");
    for &n in &[20usize, 100, 300] {
        let x = smooth(n, 0);
        let y = smooth(n, n as i64 / 4);
        group.bench_with_input(BenchmarkId::new("max", n), &(&x, &y), |bench, (x, y)| {
            bench.iter(|| black_box(x.max(y)))
        });
        group.bench_with_input(BenchmarkId::new("min", n), &(&x, &y), |bench, (x, y)| {
            bench.iter(|| black_box(x.min(y)))
        });
    }
    group.finish();
}

fn bench_truncate_and_coarsen(c: &mut Criterion) {
    let mut group = c.benchmark_group("shape");
    let wide = smooth(400, 0);
    group.bench_function("truncate_below_1e-5", |bench| {
        bench.iter(|| {
            let mut d = wide.clone();
            black_box(d.truncate_below(1e-5));
            d
        })
    });
    group.bench_function("coarsen_to_32", |bench| {
        bench.iter(|| black_box(wide.coarsened(32)))
    });
    group.finish();
}

fn bench_discretize(c: &mut Criterion) {
    let normal = ContinuousDist::normal(50.0, 3.0).expect("valid");
    let mut group = c.benchmark_group("discretize");
    for &samples in &[10usize, 20, 40] {
        let step = TimeStep::new(8.0 * 3.0 / samples as f64).expect("valid");
        group.bench_with_input(
            BenchmarkId::from_parameter(samples),
            &step,
            |bench, &step| bench.iter(|| black_box(discretize(&normal, step))),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_convolve,
    bench_combine,
    bench_truncate_and_coarsen,
    bench_discretize
);
criterion_main!(benches);
