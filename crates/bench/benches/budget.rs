//! Budget-machinery overhead and degraded-run throughput.
//!
//! Three scenarios on one circuit:
//!
//! * `unbudgeted` — the baseline analysis (inert tracker),
//! * `roomy_budget` — every limit set but none trips: measures the
//!   pure bookkeeping overhead (deadline polls, combination
//!   estimates), which must stay in the noise,
//! * `tight_combinations` — a cap that trips on most supergates:
//!   measures how fast the *degraded* analysis runs (it should be
//!   faster than the baseline — that is the point of degrading).

use criterion::{criterion_group, criterion_main, Criterion};
use pep_bench::bench_circuit;
use pep_core::{analyze, AnalysisConfig, Budget};
use pep_netlist::generate::IscasProfile;
use std::hint::black_box;

fn bench_budget(c: &mut Criterion) {
    let bench = bench_circuit(IscasProfile::S5378);
    let heavy = AnalysisConfig {
        max_effective_stems: Some(3),
        ..AnalysisConfig::default()
    };
    let mut group = c.benchmark_group("budget_s5378");
    group.sample_size(10);
    group.bench_function("unbudgeted", |b| {
        b.iter(|| black_box(analyze(&bench.netlist, &bench.timing, &heavy)))
    });
    let roomy = AnalysisConfig {
        budget: Some(Budget {
            deadline_ms: Some(600_000),
            max_combinations: Some(u64::MAX / 2),
            max_event_bytes: Some(usize::MAX / 2),
            max_stems_per_supergate: Some(200),
            fail_fast: false,
        }),
        ..heavy.clone()
    };
    group.bench_function("roomy_budget", |b| {
        b.iter(|| black_box(analyze(&bench.netlist, &bench.timing, &roomy)))
    });
    let tight = AnalysisConfig {
        budget: Some(Budget {
            max_combinations: Some(16),
            ..Budget::default()
        }),
        ..heavy.clone()
    };
    group.bench_function("tight_combinations", |b| {
        b.iter(|| black_box(analyze(&bench.netlist, &bench.timing, &tight)))
    });
    group.finish();
}

criterion_group!(benches, bench_budget);
criterion_main!(benches);
