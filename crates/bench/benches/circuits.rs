//! Whole-circuit benchmarks: the PEP analysis vs the Monte Carlo
//! baseline on the profile circuits, plus the structural substrate
//! (support computation, supergate extraction).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pep_bench::bench_circuit;
use pep_core::{analyze, AnalysisConfig};
use pep_netlist::cone::SupportSets;
use pep_netlist::generate::IscasProfile;
use pep_netlist::supergate;
use pep_sta::monte_carlo::{run_monte_carlo, McConfig};
use std::hint::black_box;

fn bench_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("pep_analyze");
    group.sample_size(10);
    for profile in [IscasProfile::S5378, IscasProfile::S9234] {
        let bench = bench_circuit(profile);
        group.bench_with_input(
            BenchmarkId::from_parameter(profile.name()),
            &bench,
            |b, bench| {
                b.iter(|| {
                    black_box(analyze(
                        &bench.netlist,
                        &bench.timing,
                        &AnalysisConfig::default(),
                    ))
                })
            },
        );
    }
    group.finish();
}

fn bench_monte_carlo(c: &mut Criterion) {
    let mut group = c.benchmark_group("monte_carlo_100_runs");
    group.sample_size(10);
    for profile in [IscasProfile::S5378, IscasProfile::S9234] {
        let bench = bench_circuit(profile);
        group.bench_with_input(
            BenchmarkId::from_parameter(profile.name()),
            &bench,
            |b, bench| {
                b.iter(|| {
                    black_box(run_monte_carlo(
                        &bench.netlist,
                        &bench.timing,
                        &McConfig {
                            runs: 100,
                            threads: 1,
                            ..McConfig::default()
                        },
                    ))
                })
            },
        );
    }
    group.finish();
}

fn bench_structure(c: &mut Criterion) {
    let bench = bench_circuit(IscasProfile::S5378);
    let mut group = c.benchmark_group("structure_s5378");
    group.sample_size(10);
    group.bench_function("support_sets", |b| {
        b.iter(|| black_box(SupportSets::compute(&bench.netlist)))
    });
    let supports = SupportSets::compute(&bench.netlist);
    group.bench_function("supergate_stats_d8", |b| {
        b.iter(|| black_box(supergate::stats(&bench.netlist, &supports, Some(8))))
    });
    group.finish();
}

criterion_group!(benches, bench_analysis, bench_monte_carlo, bench_structure);
criterion_main!(benches);
