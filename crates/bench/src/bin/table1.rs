//! Regenerates the paper's Table 1: average number of gates and fanout
//! stems per supergate for each benchmark circuit.

fn main() {
    let rows = pep_bench::table1();
    println!(
        "Table 1 — supergate structure (depth limit D = {})\n",
        pep_bench::TABLE1_DEPTH
    );
    print!("{}", pep_bench::print_table1(&rows));
}
