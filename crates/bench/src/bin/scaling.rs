//! Measures the wave-parallel scheduler's wall-time scaling across
//! worker counts on an s5378-scale circuit, verifying the determinism
//! contract (bit-identical groups for every thread count) along the way.
//!
//! Usage: `scaling [profile]` where profile is an ISCAS89 name
//! (default s5378).

use pep_netlist::generate::IscasProfile;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "s5378".to_owned());
    let profile = IscasProfile::all()
        .into_iter()
        .find(|p| p.name() == name)
        .unwrap_or_else(|| panic!("unknown profile {name}"));
    println!(
        "Thread scaling on {} (default config, best of {} reps per point)\n",
        profile.name(),
        pep_bench::SCALING_REPS
    );
    let rows = pep_bench::scaling(profile, &[1, 2, 4, 8]);
    print!("{}", pep_bench::print_scaling(&rows));
    assert!(
        rows.iter().all(|r| r.identical),
        "thread-count determinism violated"
    );
}
