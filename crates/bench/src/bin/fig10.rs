//! Regenerates Fig. 10: speedup over the Monte Carlo baseline and error
//! percentages for all six benchmark circuits.

fn main() {
    println!(
        "Fig. 10 — speedup over {}-run Monte Carlo (single thread) and errors\n",
        pep_bench::MC_RUNS
    );
    let rows = pep_bench::fig10();
    print!("{}", pep_bench::print_fig10(&rows));
}
