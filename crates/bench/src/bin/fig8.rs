//! Regenerates Fig. 8: error percentages (vs Monte Carlo) and run time
//! vs the number of data samples `N_s` per delay distribution.

fn main() {
    let profile = pep_bench::STUDY_CIRCUIT;
    println!("Fig. 8 — error and run time vs N_s on {}\n", profile.name());
    let rows = pep_bench::fig8(profile);
    print!("{}", pep_bench::print_fig8(&rows));
}
