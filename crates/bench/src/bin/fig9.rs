//! Regenerates Fig. 9: error percentages (vs Monte Carlo) and run time
//! vs the supergate depth limit `D`.

fn main() {
    let profile = pep_bench::STUDY_CIRCUIT;
    println!("Fig. 9 — error and run time vs D on {}\n", profile.name());
    let rows = pep_bench::fig9(profile);
    print!("{}", pep_bench::print_fig9(&rows));
}
