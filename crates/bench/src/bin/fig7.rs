//! Regenerates Fig. 7: error percentages and run time vs the minimum
//! event probability `P_m` (reference: a run without event dropping).

fn main() {
    let profile = pep_bench::STUDY_CIRCUIT;
    println!("Fig. 7 — error and run time vs P_m on {}\n", profile.name());
    let rows = pep_bench::fig7(profile);
    print!("{}", pep_bench::print_fig7(&rows));
}
