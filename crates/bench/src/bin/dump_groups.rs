//! Dumps every node's arrival event group as exact f64 bit patterns, for
//! byte-for-byte comparison of analyzer outputs across branches, thread
//! counts and refactors (the determinism contract's audit tool).
//!
//! Usage: `dump_groups <circuit> [threads]` where `<circuit>` is `fig6`,
//! `c17`, or an ISCAS profile name (`s5378`, …). Prints one block per
//! configuration variant (default / earliest / heavy / hybrid / dynamic);
//! diff two runs to verify bit-identity.

use pep_celllib::{DelayModel, Timing};
use pep_core::{analyze, dynamic, AnalysisConfig, CombineMode, HybridMcConfig, StemRanking};
use pep_dist::DiscreteDist;
use pep_netlist::generate::{iscas_profile, IscasProfile};
use pep_netlist::{samples, Netlist};

fn dump_group(name: &str, g: &DiscreteDist) {
    print!("{name} min={:?}", g.min_tick());
    for (t, p) in g.iter() {
        print!(" {t}:{:016x}", p.to_bits());
    }
    println!();
}

fn circuit(name: &str) -> Netlist {
    match name {
        "fig6" => samples::fig6(),
        "c17" => samples::c17(),
        other => {
            let profile = IscasProfile::all()
                .into_iter()
                .find(|p| p.name() == other)
                .unwrap_or_else(|| panic!("unknown circuit {other}"));
            iscas_profile(profile)
        }
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "fig6".to_owned());
    let threads: usize = args
        .next()
        .map(|t| t.parse().expect("thread count"))
        .unwrap_or(1);
    let nl = circuit(&name);
    let timing = Timing::annotate(&nl, &DelayModel::dac2001(pep_bench::DELAY_SEED));

    let variants: Vec<(&str, AnalysisConfig)> = vec![
        (
            "default",
            AnalysisConfig {
                threads,
                ..AnalysisConfig::default()
            },
        ),
        (
            "earliest",
            AnalysisConfig {
                mode: CombineMode::Earliest,
                threads,
                ..AnalysisConfig::default()
            },
        ),
        (
            "heavy",
            AnalysisConfig {
                max_effective_stems: Some(3),
                stem_ranking: StemRanking::Sensitivity,
                max_conditioning_events: Some(16),
                conditioning_resolution: Some(8),
                threads,
                ..AnalysisConfig::default()
            },
        ),
        (
            "hybrid",
            AnalysisConfig {
                hybrid_mc: Some(HybridMcConfig {
                    stem_threshold: 1,
                    runs: 500,
                    seed: 7,
                }),
                threads,
                ..AnalysisConfig::default()
            },
        ),
    ];
    for (label, config) in &variants {
        let a = analyze(&nl, &timing, config);
        println!("== {name} {label} threads={threads}");
        println!("stats {:?}", a.stats());
        for id in nl.node_ids() {
            dump_group(&format!("n{}", id.index()), a.group(id));
        }
    }

    // Dynamic mode: flip every input low -> high.
    let n_pi = nl.primary_inputs().len();
    let v1 = vec![false; n_pi];
    let v2 = vec![true; n_pi];
    let d = dynamic::analyze_transition(
        &nl,
        &timing,
        &v1,
        &v2,
        &AnalysisConfig {
            threads,
            ..AnalysisConfig::default()
        },
    );
    println!("== {name} dynamic threads={threads}");
    println!("stats {:?}", d.stats());
    for id in nl.node_ids() {
        dump_group(&format!("n{}", id.index()), d.group(id));
    }
}
