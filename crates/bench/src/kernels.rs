//! Kernel-layer micro-benchmarks and circuit wall-time probes behind the
//! checked-in `BENCH_kernels.json` / `BENCH_circuits.json` artifacts.
//!
//! Each kernel row times the allocating primitive against its
//! `*_into`/arena counterpart (and the k-ary combine against the
//! pairwise fold it replaces) over identical inputs, reporting
//! best-of-reps ns/op. The circuit rows time a full default-config
//! `analyze` per ISCAS profile.

use crate::bench_circuit;
use pep_core::cell_eval::{combine, combine_into};
use pep_core::{analyze, AnalysisConfig, CombineMode};
use pep_dist::{DiscreteDist, DistScratch};
use pep_netlist::generate::IscasProfile;
use serde::Serialize;
use std::hint::black_box;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Version of the JSON envelope written to the `BENCH_*.json` artifacts.
///
/// v1 was a bare single-report object with no version or timestamp;
/// v2 adds `schema_version` + `generated_at_unix_ms` so a file holding
/// several runs stays orderable.
pub const BENCH_SCHEMA_VERSION: u32 = 2;

fn now_unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// One kernel micro-benchmark: ns/op of the allocating primitive vs the
/// scratch-arena `_into` form on the same inputs.
#[derive(Debug, Clone, Serialize)]
pub struct KernelBenchRow {
    /// Kernel under test (operand sizes in the name).
    pub kernel: String,
    /// Best-of-reps ns/op of the allocating form.
    pub ns_alloc: f64,
    /// Best-of-reps ns/op of the `_into`/arena form.
    pub ns_into: f64,
    /// `ns_alloc / ns_into`.
    pub speedup: f64,
}

/// One full-analysis wall-time row.
#[derive(Debug, Clone, Serialize)]
pub struct CircuitBenchRow {
    /// ISCAS profile name.
    pub circuit: String,
    /// Combinational gate count.
    pub gates: usize,
    /// Best-of-reps wall seconds of a default-config `analyze`.
    pub seconds: f64,
    /// Stems conditioned on during the run (workload witness).
    pub stems_conditioned: usize,
}

/// Envelope serialized to `BENCH_kernels.json`.
///
/// (The vendored offline serde derive does not support generics, hence
/// two concrete envelopes instead of one `BenchReport<R>`.)
#[derive(Debug, Clone, Serialize)]
pub struct KernelBenchReport {
    /// Envelope version ([`BENCH_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Milliseconds since the Unix epoch when the run finished.
    pub generated_at_unix_ms: u64,
    /// What produced the file.
    pub generator: String,
    /// Hardware threads the host exposed.
    pub host_threads: usize,
    /// Timing repetitions (best is reported).
    pub reps: usize,
    /// The measurements.
    pub rows: Vec<KernelBenchRow>,
}

impl KernelBenchReport {
    /// Pretty JSON for the checked-in artifact.
    pub fn to_json_pretty(&self) -> String {
        serde::json::to_string_pretty(self)
    }
}

/// Envelope serialized to `BENCH_circuits.json`.
#[derive(Debug, Clone, Serialize)]
pub struct CircuitBenchReport {
    /// Envelope version ([`BENCH_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Milliseconds since the Unix epoch when the run finished.
    pub generated_at_unix_ms: u64,
    /// What produced the file.
    pub generator: String,
    /// Hardware threads the host exposed.
    pub host_threads: usize,
    /// Timing repetitions (best is reported).
    pub reps: usize,
    /// The measurements.
    pub rows: Vec<CircuitBenchRow>,
}

impl CircuitBenchReport {
    /// Pretty JSON for the checked-in artifact.
    pub fn to_json_pretty(&self) -> String {
        serde::json::to_string_pretty(self)
    }
}

fn host_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// A smooth n-point test distribution (same shape as the criterion
/// micro-benchmarks use).
fn smooth(n: usize, origin: i64) -> DiscreteDist {
    let mid = n as f64 / 2.0;
    let weights: Vec<(i64, f64)> = (0..n)
        .map(|i| {
            let z = (i as f64 - mid) / (n as f64 / 6.0);
            (origin + i as i64, (-0.5 * z * z).exp())
        })
        .collect();
    let total: f64 = weights.iter().map(|&(_, w)| w).sum();
    DiscreteDist::from_pairs(weights.into_iter().map(|(t, w)| (t, w / total)))
}

/// Best-of-`reps` ns/op of `f` over `iters` iterations per rep.
fn time_ns(reps: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(start.elapsed().as_secs_f64() * 1e9 / iters as f64);
    }
    best
}

const KERNEL_REPS: usize = 5;
const KERNEL_ITERS: usize = 2_000;

/// Times every hot kernel, allocating vs `_into`, plus the k-ary combine
/// against the pairwise fold.
pub fn kernel_bench() -> KernelBenchReport {
    let mut rows = Vec::new();
    let mut row = |kernel: &str, ns_alloc: f64, ns_into: f64| {
        rows.push(KernelBenchRow {
            kernel: kernel.to_owned(),
            ns_alloc,
            ns_into,
            speedup: ns_alloc / ns_into,
        });
    };
    let mut scratch = DistScratch::new();
    let mut out = DiscreteDist::empty();

    let wide = smooth(300, 0);
    let cell = smooth(20, 5);
    row(
        "convolve_300x20",
        time_ns(KERNEL_REPS, KERNEL_ITERS, || {
            black_box(wide.convolve(&cell));
        }),
        time_ns(KERNEL_REPS, KERNEL_ITERS, || {
            wide.convolve_into(&cell, &mut out);
            black_box(&out);
        }),
    );

    let point = DiscreteDist::point(7);
    row(
        "convolve_point_fast_path_300x1",
        time_ns(KERNEL_REPS, KERNEL_ITERS, || {
            black_box(wide.convolve(&point));
        }),
        time_ns(KERNEL_REPS, KERNEL_ITERS, || {
            wide.convolve_into(&point, &mut out);
            black_box(&out);
        }),
    );

    let other = smooth(300, 75);
    row(
        "max_300x300",
        time_ns(KERNEL_REPS, KERNEL_ITERS, || {
            black_box(wide.max(&other));
        }),
        time_ns(KERNEL_REPS, KERNEL_ITERS, || {
            wide.max_into(&other, &mut out);
            black_box(&out);
        }),
    );
    row(
        "min_300x300",
        time_ns(KERNEL_REPS, KERNEL_ITERS, || {
            black_box(wide.min(&other));
        }),
        time_ns(KERNEL_REPS, KERNEL_ITERS, || {
            wide.min_into(&other, &mut out);
            black_box(&out);
        }),
    );

    row(
        "accumulate_union_300+300",
        time_ns(KERNEL_REPS, KERNEL_ITERS, || {
            let mut d = wide.clone();
            d.accumulate(&other);
            black_box(&d);
        }),
        time_ns(KERNEL_REPS, KERNEL_ITERS, || {
            wide.accumulate_into(&other, &mut out);
            black_box(&out);
        }),
    );

    row(
        "coarsen_300_to_32",
        time_ns(KERNEL_REPS, KERNEL_ITERS, || {
            black_box(wide.coarsened(32));
        }),
        time_ns(KERNEL_REPS, KERNEL_ITERS, || {
            wide.coarsen_into(32, &mut out, &mut scratch);
            black_box(&out);
        }),
    );

    // k-ary combine: allocating pairwise fold vs the arena fold.
    let groups: Vec<DiscreteDist> = (0..6).map(|i| smooth(120, 10 * i as i64)).collect();
    let refs: Vec<&DiscreteDist> = groups.iter().collect();
    for (name, mode) in [
        ("combine_latest_k6_120", CombineMode::Latest),
        ("combine_earliest_k6_120", CombineMode::Earliest),
    ] {
        row(
            name,
            time_ns(KERNEL_REPS, KERNEL_ITERS / 4, || {
                black_box(combine(refs.iter().copied(), mode));
            }),
            time_ns(KERNEL_REPS, KERNEL_ITERS / 4, || {
                combine_into(&refs, mode, &mut out, &mut scratch);
                black_box(&out);
            }),
        );
    }
    // The one-pass streaming k-ary max vs the segment-loop fold actually
    // used — the honest record of why combine routes through the fold.
    row(
        "max_k6_streaming_vs_fold_120",
        time_ns(KERNEL_REPS, KERNEL_ITERS / 4, || {
            DiscreteDist::max_k_streaming_into(&refs, &mut out, &mut scratch);
            black_box(&out);
        }),
        time_ns(KERNEL_REPS, KERNEL_ITERS / 4, || {
            DiscreteDist::max_k_into(&refs, &mut out, &mut scratch);
            black_box(&out);
        }),
    );

    KernelBenchReport {
        schema_version: BENCH_SCHEMA_VERSION,
        generated_at_unix_ms: now_unix_ms(),
        generator: "repro_all (pep-bench kernel_bench)".to_owned(),
        host_threads: host_threads(),
        reps: KERNEL_REPS,
        rows,
    }
}

const CIRCUIT_REPS: usize = 2;

/// Times a default-config `analyze` per ISCAS profile circuit.
pub fn circuits_bench() -> CircuitBenchReport {
    let config = AnalysisConfig::default();
    let rows = IscasProfile::all()
        .iter()
        .map(|&profile| {
            let bench = bench_circuit(profile);
            let mut best = f64::MAX;
            let mut stems = 0;
            for _ in 0..CIRCUIT_REPS {
                let start = Instant::now();
                let a = analyze(&bench.netlist, &bench.timing, &config);
                best = best.min(start.elapsed().as_secs_f64());
                stems = a.stats().stems_conditioned;
                black_box(&a);
            }
            CircuitBenchRow {
                circuit: profile.name().to_owned(),
                gates: bench.netlist.gate_count(),
                seconds: best,
                stems_conditioned: stems,
            }
        })
        .collect();
    CircuitBenchReport {
        schema_version: BENCH_SCHEMA_VERSION,
        generated_at_unix_ms: now_unix_ms(),
        generator: "repro_all (pep-bench circuits_bench)".to_owned(),
        host_threads: host_threads(),
        reps: CIRCUIT_REPS,
        rows,
    }
}

/// Appends a freshly-rendered report onto an artifact's run history.
///
/// The v2 artifact is a JSON array of report objects, oldest first. A
/// legacy v1 file (a bare single-report object) is wrapped as the first
/// element so no history is lost; unparseable or missing content starts
/// a fresh one-element history instead of aborting the bench run.
pub fn append_run(existing: Option<&str>, report_json: &str) -> String {
    use serde::Value;
    let fresh = serde::json::from_str(report_json).expect("fresh report is valid JSON");
    let mut runs = match existing.map(serde::json::from_str) {
        Some(Ok(Value::Seq(runs))) => runs,
        Some(Ok(single @ Value::Map(_))) => vec![single],
        _ => Vec::new(),
    };
    runs.push(fresh);
    serde::json::to_string_pretty(&Value::Seq(runs))
}

/// Markdown table over the kernel rows (for `EXPERIMENTS.md`).
pub fn print_kernels(report: &KernelBenchReport) -> String {
    let mut s = String::from(
        "| kernel | allocating ns/op | `_into` ns/op | speedup |\n|---|---|---|---|\n",
    );
    for r in &report.rows {
        s.push_str(&format!(
            "| {} | {:.0} | {:.0} | {:.2}x |\n",
            r.kernel, r.ns_alloc, r.ns_into, r.speedup
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Value;

    fn run(v: u64) -> String {
        format!("{{\"schema_version\": 2, \"generated_at_unix_ms\": {v}, \"rows\": []}}")
    }

    fn as_seq(json: &str) -> Vec<Value> {
        match serde::json::from_str(json).expect("valid") {
            Value::Seq(runs) => runs,
            other => panic!("expected array artifact, got {other:?}"),
        }
    }

    fn stamp(run: &Value) -> u64 {
        match run {
            Value::Map(fields) => fields
                .iter()
                .find_map(|(k, v)| match (k.as_str(), v) {
                    ("generated_at_unix_ms", Value::Int(t)) => Some(*t as u64),
                    ("generated_at_unix_ms", Value::UInt(t)) => Some(*t),
                    _ => None,
                })
                .expect("stamped run"),
            other => panic!("expected run object, got {other:?}"),
        }
    }

    #[test]
    fn append_run_grows_an_ordered_history() {
        let first = append_run(None, &run(100));
        let second = append_run(Some(&first), &run(200));
        let runs = as_seq(&second);
        assert_eq!(runs.len(), 2);
        assert_eq!(stamp(&runs[0]), 100);
        assert_eq!(stamp(&runs[1]), 200);
    }

    #[test]
    fn append_run_wraps_legacy_single_object_files() {
        // A v1 artifact is a bare report object with no version field.
        let legacy = "{\"generator\": \"old\", \"rows\": []}";
        let merged = append_run(Some(legacy), &run(300));
        let runs = as_seq(&merged);
        assert_eq!(runs.len(), 2);
        assert!(matches!(&runs[0], Value::Map(f) if f.iter().any(|(k, _)| k == "generator")));
        assert_eq!(stamp(&runs[1]), 300);
    }

    #[test]
    fn append_run_discards_unparseable_history() {
        let merged = append_run(Some("not json"), &run(400));
        assert_eq!(as_seq(&merged).len(), 1);
    }

    #[test]
    fn reports_carry_the_v2_envelope() {
        let report = KernelBenchReport {
            schema_version: BENCH_SCHEMA_VERSION,
            generated_at_unix_ms: now_unix_ms(),
            generator: "test".to_owned(),
            host_threads: 1,
            reps: 1,
            rows: Vec::new(),
        };
        let json = report.to_json_pretty();
        assert!(json.contains("\"schema_version\": 2"));
        assert!(json.contains("\"generated_at_unix_ms\""));
        assert!(report.generated_at_unix_ms > 1_600_000_000_000);
    }
}
