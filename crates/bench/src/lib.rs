//! Reproduction harness for the DAC 2001 evaluation (§4).
//!
//! One function per table/figure, each returning structured rows that the
//! `table1`/`fig7`/`fig8`/`fig9`/`fig10` binaries print in the paper's
//! layout and that `repro_all` assembles into `EXPERIMENTS.md`.
//!
//! All experiments run on the seeded ISCAS89-profile circuits (see
//! `pep_netlist::generate`) with the paper's delay model (`DelayModel::
//! dac2001`): every invocation regenerates identical inputs, so results
//! are reproducible run to run up to wall-clock noise.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kernels;

use pep_celllib::{DelayModel, Timing};
use pep_core::{analyze, analyze_observed, compare, AnalysisConfig, PepAnalysis};
use pep_netlist::cone::SupportSets;
use pep_netlist::generate::{iscas_profile, IscasProfile};
use pep_netlist::{supergate, Netlist};
use pep_obs::Session;
use pep_sta::monte_carlo::{run_monte_carlo, run_monte_carlo_observed, McConfig, McResult};
use std::time::Duration;

/// Seed used for all delay annotations, matching the probes in DESIGN.md.
pub const DELAY_SEED: u64 = 1;

/// Monte Carlo runs of the baseline (the paper's 5 000).
pub const MC_RUNS: usize = 5_000;

/// The circuit the single-circuit studies (Figs. 7–9) run on — the paper
/// uses s15850 because "it actually has the worst performance among the
/// tested benchmarks".
pub const STUDY_CIRCUIT: IscasProfile = IscasProfile::S15850;

/// A benchmark circuit with its statistical timing annotation.
pub struct Bench {
    /// The profile circuit.
    pub netlist: Netlist,
    /// Its delay annotation under the paper's model.
    pub timing: Timing,
}

/// Generates a profile circuit and annotates it with the paper's delay
/// model.
pub fn bench_circuit(profile: IscasProfile) -> Bench {
    let netlist = iscas_profile(profile);
    let timing = Timing::annotate(&netlist, &DelayModel::dac2001(DELAY_SEED));
    Bench { netlist, timing }
}

/// Runs the Monte Carlo baseline (all cores; used as the accuracy
/// reference).
pub fn reference_mc(bench: &Bench) -> McResult {
    run_monte_carlo(
        &bench.netlist,
        &bench.timing,
        &McConfig {
            runs: MC_RUNS,
            ..McConfig::default()
        },
    )
}

/// Times a single-threaded Monte Carlo run (the speedup baseline; the
/// 2001 comparison was single-core).
pub fn timed_mc_single_thread(bench: &Bench) -> (McResult, Duration) {
    timed_mc_single_thread_observed(bench, &Session::new())
}

/// [`timed_mc_single_thread`], recording into a shared (enabled) `obs`
/// session; the returned duration is this call's share of the
/// `mc-baseline` phase.
pub fn timed_mc_single_thread_observed(bench: &Bench, obs: &Session) -> (McResult, Duration) {
    let before = obs.total_of("mc-baseline").unwrap_or_default();
    let mc = run_monte_carlo_observed(
        &bench.netlist,
        &bench.timing,
        &McConfig {
            runs: MC_RUNS,
            threads: 1,
            ..McConfig::default()
        },
        obs,
    );
    let after = obs.total_of("mc-baseline").unwrap_or_default();
    (mc, after - before)
}

/// Times a PEP analysis.
pub fn timed_pep(bench: &Bench, config: &AnalysisConfig) -> (PepAnalysis, Duration) {
    timed_pep_observed(bench, config, &Session::new())
}

/// [`timed_pep`], recording into a shared (enabled) `obs` session; the
/// returned duration is this call's share of the `analyze` phase (the
/// phase timer aggregates same-named spans, so the delta is taken around
/// the call).
pub fn timed_pep_observed(
    bench: &Bench,
    config: &AnalysisConfig,
    obs: &Session,
) -> (PepAnalysis, Duration) {
    let before = obs.total_of("analyze").unwrap_or_default();
    let pep = {
        let _phase = obs.phase("analyze");
        analyze_observed(&bench.netlist, &bench.timing, config, obs)
    };
    let after = obs.total_of("analyze").unwrap_or_default();
    (pep, after - before)
}

// ---------------------------------------------------------------------
// Table 1 — supergate structure statistics per circuit.
// ---------------------------------------------------------------------

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Circuit name.
    pub circuit: &'static str,
    /// Gate count of the combinational profile.
    pub gates: usize,
    /// Number of reconvergent gates (supergates).
    pub supergates: usize,
    /// Average interior gates per supergate (`N_g`).
    pub avg_gates: f64,
    /// Average stems per supergate (`N_s`).
    pub avg_stems: f64,
    /// Largest supergate seen.
    pub max_gates: usize,
}

/// The supergate depth used for the Table 1 statistics (the analyzer's
/// default operating depth).
pub const TABLE1_DEPTH: u32 = 8;

/// Regenerates Table 1: the average number of gates and fanout stems per
/// supergate for each benchmark circuit.
pub fn table1() -> Vec<Table1Row> {
    IscasProfile::all()
        .into_iter()
        .map(|p| {
            let nl = iscas_profile(p);
            let supports = SupportSets::compute(&nl);
            let st = supergate::stats(&nl, &supports, Some(TABLE1_DEPTH));
            Table1Row {
                circuit: p.name(),
                gates: nl.gate_count(),
                supergates: st.count,
                avg_gates: st.avg_gates,
                avg_stems: st.avg_stems,
                max_gates: st.max_gates,
            }
        })
        .collect()
}

/// Prints Table 1 in the paper's layout.
pub fn print_table1(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    out.push_str("| Ckt | gates | supergates | N_g (avg gates) | N_s (avg stems) | max gates |\n");
    out.push_str("|-----|-------|------------|-----------------|-----------------|-----------|\n");
    for r in rows {
        out.push_str(&format!(
            "| {} | {} | {} | {:.1} | {:.2} | {} |\n",
            r.circuit, r.gates, r.supergates, r.avg_gates, r.avg_stems, r.max_gates
        ));
    }
    out
}

// ---------------------------------------------------------------------
// Fig. 7 — error and run time vs the minimum event probability P_m.
// ---------------------------------------------------------------------

/// One point of Fig. 7.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    /// The probability floor `P_m`.
    pub p_min: f64,
    /// Mean-arrival error % vs the no-dropping reference (`M_e + 3σ_e`).
    pub mean_err: f64,
    /// σ error % vs the no-dropping reference.
    pub std_err: f64,
    /// Analysis wall time.
    pub run_time: Duration,
    /// Total probability mass the filter dropped.
    pub dropped_mass: f64,
}

/// Regenerates Fig. 7 on `profile`: sweep `P_m`, comparing against a run
/// with event dropping disabled (exactly the paper's methodology).
pub fn fig7(profile: IscasProfile) -> Vec<Fig7Row> {
    let bench = bench_circuit(profile);
    let reference = analyze(
        &bench.netlist,
        &bench.timing,
        &AnalysisConfig {
            min_event_prob: 0.0,
            ..AnalysisConfig::default()
        },
    );
    [1e-10, 1e-9, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2]
        .into_iter()
        .map(|p_min| {
            let (pep, run_time) = timed_pep(
                &bench,
                &AnalysisConfig {
                    min_event_prob: p_min,
                    ..AnalysisConfig::default()
                },
            );
            let cmp = compare::against_reference(&bench.netlist, &reference, &pep);
            let (mean_err, std_err) = cmp.report();
            Fig7Row {
                p_min,
                mean_err,
                std_err,
                run_time,
                dropped_mass: pep.stats().dropped_mass,
            }
        })
        .collect()
}

/// Prints Fig. 7's series.
pub fn print_fig7(rows: &[Fig7Row]) -> String {
    let mut out = String::new();
    out.push_str("| P_m | mean err % | sigma err % | run time | dropped mass |\n");
    out.push_str("|-----|------------|-------------|----------|--------------|\n");
    for r in rows {
        out.push_str(&format!(
            "| {:.0e} | {:.3} | {:.3} | {:.0?} | {:.4} |\n",
            r.p_min, r.mean_err, r.std_err, r.run_time, r.dropped_mass
        ));
    }
    out
}

// ---------------------------------------------------------------------
// Fig. 8 — error and run time vs the number of data samples N_s.
// ---------------------------------------------------------------------

/// One point of Fig. 8.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// Number of samples per delay distribution.
    pub samples: usize,
    /// Mean-arrival error % vs Monte Carlo.
    pub mean_err: f64,
    /// σ error % vs Monte Carlo.
    pub std_err: f64,
    /// Analysis wall time.
    pub run_time: Duration,
}

/// Regenerates Fig. 8 on `profile`: sweep `N_s` against the Monte Carlo
/// reference, with the paper's `P_m = 10⁻⁵`.
pub fn fig8(profile: IscasProfile) -> Vec<Fig8Row> {
    let bench = bench_circuit(profile);
    let mc = reference_mc(&bench);
    [5, 8, 10, 15, 20, 25, 30, 40]
        .into_iter()
        .map(|samples| {
            let (pep, run_time) = timed_pep(
                &bench,
                &AnalysisConfig {
                    samples,
                    ..AnalysisConfig::default()
                },
            );
            let cmp = compare::against_monte_carlo(&bench.netlist, &pep, &mc);
            let (mean_err, std_err) = cmp.report();
            Fig8Row {
                samples,
                mean_err,
                std_err,
                run_time,
            }
        })
        .collect()
}

/// Prints Fig. 8's series.
pub fn print_fig8(rows: &[Fig8Row]) -> String {
    let mut out = String::new();
    out.push_str("| N_s | mean err % | sigma err % | run time |\n");
    out.push_str("|-----|------------|-------------|----------|\n");
    for r in rows {
        out.push_str(&format!(
            "| {} | {:.3} | {:.3} | {:.0?} |\n",
            r.samples, r.mean_err, r.std_err, r.run_time
        ));
    }
    out
}

// ---------------------------------------------------------------------
// Fig. 9 — error and run time vs the supergate depth limit D.
// ---------------------------------------------------------------------

/// One point of Fig. 9.
#[derive(Debug, Clone)]
pub struct Fig9Row {
    /// Supergate depth limit.
    pub depth: u32,
    /// Mean-arrival error % vs Monte Carlo.
    pub mean_err: f64,
    /// σ error % vs Monte Carlo.
    pub std_err: f64,
    /// Analysis wall time.
    pub run_time: Duration,
}

/// Regenerates Fig. 9 on `profile`: sweep the supergate depth `D` against
/// the Monte Carlo reference.
pub fn fig9(profile: IscasProfile) -> Vec<Fig9Row> {
    let bench = bench_circuit(profile);
    let mc = reference_mc(&bench);
    [1u32, 2, 3, 4, 5, 6, 8, 10]
        .into_iter()
        .map(|depth| {
            let (pep, run_time) = timed_pep(
                &bench,
                &AnalysisConfig {
                    supergate_depth: Some(depth),
                    ..AnalysisConfig::default()
                },
            );
            let cmp = compare::against_monte_carlo(&bench.netlist, &pep, &mc);
            let (mean_err, std_err) = cmp.report();
            Fig9Row {
                depth,
                mean_err,
                std_err,
                run_time,
            }
        })
        .collect()
}

/// Prints Fig. 9's series.
pub fn print_fig9(rows: &[Fig9Row]) -> String {
    let mut out = String::new();
    out.push_str("| D | mean err % | sigma err % | run time |\n");
    out.push_str("|---|------------|-------------|----------|\n");
    for r in rows {
        out.push_str(&format!(
            "| {} | {:.3} | {:.3} | {:.0?} |\n",
            r.depth, r.mean_err, r.std_err, r.run_time
        ));
    }
    out
}

// ---------------------------------------------------------------------
// Fig. 10 — speedup over Monte Carlo and errors per circuit.
// ---------------------------------------------------------------------

/// One bar-group of Fig. 10.
#[derive(Debug, Clone)]
pub struct Fig10Row {
    /// Circuit name.
    pub circuit: &'static str,
    /// PEP analysis wall time.
    pub pep_time: Duration,
    /// Monte Carlo (5 000 runs, single thread) wall time.
    pub mc_time: Duration,
    /// `mc_time / pep_time`.
    pub speedup: f64,
    /// Mean-arrival error % vs Monte Carlo (`M_e + 3σ_e`).
    pub mean_err: f64,
    /// σ error % vs Monte Carlo.
    pub std_err: f64,
    /// The Monte Carlo sample-mean error bound over the primary outputs
    /// (the paper's ~0.95% context figure).
    pub mc_bound: f64,
}

/// Regenerates Fig. 10 across all six circuits with the default (paper
/// operating point) configuration.
pub fn fig10() -> Vec<Fig10Row> {
    IscasProfile::all()
        .into_iter()
        .map(|p| {
            let bench = bench_circuit(p);
            let (pep, pep_time) = timed_pep(&bench, &AnalysisConfig::default());
            let (mc, mc_time) = timed_mc_single_thread(&bench);
            let cmp = compare::against_monte_carlo(&bench.netlist, &pep, &mc);
            let (mean_err, std_err) = cmp.report();
            // Pseudo-outputs driven directly by primary inputs carry no
            // timing (mean 0) and would make the relative bound infinite.
            let mc_bound = mc.worst_error_bound(
                bench
                    .netlist
                    .primary_outputs()
                    .iter()
                    .copied()
                    .filter(|&po| mc.mean(po) > 0.0),
            ) * 100.0;
            Fig10Row {
                circuit: p.name(),
                pep_time,
                mc_time,
                speedup: mc_time.as_secs_f64() / pep_time.as_secs_f64(),
                mean_err,
                std_err,
                mc_bound,
            }
        })
        .collect()
}

/// Prints Fig. 10's series.
pub fn print_fig10(rows: &[Fig10Row]) -> String {
    let mut out = String::new();
    out.push_str(
        "| Ckt | PEP time | MC time | speedup | mean err % | sigma err % | MC bound % |\n",
    );
    out.push_str(
        "|-----|----------|---------|---------|------------|-------------|------------|\n",
    );
    for r in rows {
        out.push_str(&format!(
            "| {} | {:.0?} | {:.0?} | {:.1}x | {:.2} | {:.2} | {:.2} |\n",
            r.circuit, r.pep_time, r.mc_time, r.speedup, r.mean_err, r.std_err, r.mc_bound
        ));
    }
    out
}

// ---------------------------------------------------------------------
// Thread scaling — wave-parallel scheduler wall time vs worker count.
// ---------------------------------------------------------------------

/// One point of the thread-scaling study.
#[derive(Debug, Clone)]
pub struct ScalingRow {
    /// Worker threads given to the wave scheduler.
    pub threads: usize,
    /// Analysis wall time (best of [`SCALING_REPS`] repetitions).
    pub run_time: Duration,
    /// `time(threads = 1) / time(threads = n)`.
    pub speedup: f64,
    /// Whether every node's event group matched the single-thread run
    /// bit for bit (the scheduler's determinism contract).
    pub identical: bool,
}

/// Repetitions per thread count; the fastest is reported so scheduler
/// scaling is not confused with allocator or cache warm-up noise.
pub const SCALING_REPS: usize = 3;

/// Measures the wave-parallel scheduler's wall-time scaling on
/// `profile` with the default (paper operating point) configuration,
/// and verifies the thread-count determinism contract along the way.
pub fn scaling(profile: IscasProfile, thread_counts: &[usize]) -> Vec<ScalingRow> {
    let bench = bench_circuit(profile);
    let run = |threads: usize| {
        let config = AnalysisConfig {
            threads,
            ..AnalysisConfig::default()
        };
        let mut best: Option<(PepAnalysis, Duration)> = None;
        for _ in 0..SCALING_REPS {
            let (pep, t) = timed_pep(&bench, &config);
            if best.as_ref().is_none_or(|(_, b)| t < *b) {
                best = Some((pep, t));
            }
        }
        best.expect("at least one repetition")
    };
    let (reference, base_time) = run(1);
    thread_counts
        .iter()
        .map(|&threads| {
            if threads == 1 {
                return ScalingRow {
                    threads: 1,
                    run_time: base_time,
                    speedup: 1.0,
                    identical: true,
                };
            }
            let (pep, run_time) = run(threads);
            let identical = bench
                .netlist
                .node_ids()
                .all(|id| pep.group(id) == reference.group(id))
                && pep.stats() == reference.stats();
            ScalingRow {
                threads,
                run_time,
                speedup: base_time.as_secs_f64() / run_time.as_secs_f64(),
                identical,
            }
        })
        .collect()
}

/// Prints the thread-scaling table.
pub fn print_scaling(rows: &[ScalingRow]) -> String {
    let mut out = String::new();
    out.push_str("| threads | run time | speedup vs 1 | bit-identical |\n");
    out.push_str("|---------|----------|--------------|---------------|\n");
    for r in rows {
        out.push_str(&format!(
            "| {} | {:.1?} | {:.2}x | {} |\n",
            r.threads,
            r.run_time,
            r.speedup,
            if r.identical { "yes" } else { "NO" }
        ));
    }
    out
}

// ---------------------------------------------------------------------
// Heuristic ablation — accuracy and cost of each §3.3 approximation.
// ---------------------------------------------------------------------

/// One ablation configuration's outcome.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Configuration label.
    pub label: &'static str,
    /// Analysis wall time.
    pub run_time: Duration,
    /// Mean-arrival error % vs Monte Carlo.
    pub mean_err: f64,
    /// σ error % vs Monte Carlo.
    pub std_err: f64,
    /// Stems conditioned across the circuit.
    pub stems_conditioned: usize,
}

/// Ablates each heuristic in isolation on `profile` against the Monte
/// Carlo reference — the quantified version of DESIGN.md's design-choice
/// list.
pub fn ablation(profile: IscasProfile) -> Vec<AblationRow> {
    use pep_core::{HybridMcConfig, StemRanking};
    let bench = bench_circuit(profile);
    let mc = reference_mc(&bench);
    let configs: Vec<(&'static str, AnalysisConfig)> = vec![
        ("default", AnalysisConfig::default()),
        (
            "no event dropping",
            AnalysisConfig {
                min_event_prob: 0.0,
                ..AnalysisConfig::default()
            },
        ),
        (
            "no stem filter",
            AnalysisConfig {
                filter_stems: false,
                ..AnalysisConfig::default()
            },
        ),
        (
            "no conditioning",
            AnalysisConfig {
                max_effective_stems: Some(0),
                ..AnalysisConfig::default()
            },
        ),
        ("two-stem", AnalysisConfig::two_stem()),
        (
            "sensitivity ranking",
            AnalysisConfig {
                stem_ranking: StemRanking::Sensitivity,
                ..AnalysisConfig::default()
            },
        ),
        (
            "uncapped enumeration",
            AnalysisConfig {
                max_conditioning_events: None,
                conditioning_resolution: None,
                ..AnalysisConfig::default()
            },
        ),
        (
            "hybrid MC (>2 stems)",
            AnalysisConfig {
                hybrid_mc: Some(HybridMcConfig {
                    stem_threshold: 2,
                    runs: 2_000,
                    seed: 7,
                }),
                ..AnalysisConfig::default()
            },
        ),
    ];
    configs
        .into_iter()
        .map(|(label, config)| {
            let (pep, run_time) = timed_pep(&bench, &config);
            let (mean_err, std_err) =
                compare::against_monte_carlo(&bench.netlist, &pep, &mc).report();
            AblationRow {
                label,
                run_time,
                mean_err,
                std_err,
                stems_conditioned: pep.stats().stems_conditioned,
            }
        })
        .collect()
}

/// Prints the ablation table.
pub fn print_ablation(rows: &[AblationRow]) -> String {
    let mut out = String::new();
    out.push_str(
        "| configuration | run time | mean err % | sigma err % | stems conditioned |
",
    );
    out.push_str(
        "|---------------|----------|------------|-------------|-------------------|
",
    );
    for r in rows {
        out.push_str(&format!(
            "| {} | {:.0?} | {:.2} | {:.2} | {} |
",
            r.label, r.run_time, r.mean_err, r.std_err, r.stems_conditioned
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_covers_all_circuits() {
        // Structure only (cheap): the smallest circuit's row.
        let nl = iscas_profile(IscasProfile::S5378);
        let supports = SupportSets::compute(&nl);
        let st = supergate::stats(&nl, &supports, Some(TABLE1_DEPTH));
        assert!(st.count > 100);
        assert!(st.avg_gates >= 1.0);
        assert!(st.avg_stems >= 0.5);
    }

    #[test]
    fn fig7_shape_on_small_circuit() {
        // Use the smallest profile to keep test time sane; assert the
        // paper's qualitative shape: error grows with P_m.
        let rows = fig7(IscasProfile::S5378);
        assert_eq!(rows.len(), 9);
        let first = &rows[0]; // P_m = 1e-10
        let last = &rows[rows.len() - 1]; // P_m = 1e-2
        assert!(last.mean_err > first.mean_err);
        assert!(last.dropped_mass > first.dropped_mass);
    }
}
