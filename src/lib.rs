//! `psta` — statistical static timing analysis by probabilistic event
//! propagation.
//!
//! Umbrella crate re-exporting the workspace libraries. See the individual
//! crates for details:
//!
//! * [`dist`] — probability substrate (distributions, discretization, stats),
//! * [`netlist`] — gate-level circuits, supergates and generators,
//! * [`celllib`] — cell library and statistical delay annotation,
//! * [`sta`] — deterministic STA and the Monte Carlo baseline,
//! * [`core`] — the probabilistic event propagation analyzer (the paper's
//!   contribution),
//! * [`obs`] — phase-level tracing, metrics and machine-readable run
//!   reports across the pipeline.

#![forbid(unsafe_code)]

pub use pep_celllib as celllib;
pub use pep_core as core;
pub use pep_dist as dist;
pub use pep_netlist as netlist;
pub use pep_obs as obs;
pub use pep_sta as sta;
