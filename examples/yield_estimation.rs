//! Timing-yield estimation — one of the applications the paper's
//! conclusion proposes for the engine ("yield estimation and
//! optimization").
//!
//! The analyzer produces the full circuit-delay *distribution*, so the
//! parametric timing yield at a clock period `T` is just its CDF — no
//! resampling per candidate period, which is exactly the advantage over
//! Monte Carlo the paper highlights (§4: events "can be used to construct
//! the waveform of the arrival time distribution").
//!
//! ```sh
//! cargo run --release --example yield_estimation
//! ```

use psta::celllib::{DelayModel, Timing};
use psta::core::{analyze, AnalysisConfig};
use psta::netlist::generate::array_multiplier;
use psta::sta::monte_carlo::{run_monte_carlo, McConfig};

fn main() {
    // An 8x8 array multiplier: deep, reconvergent, realistic.
    let nl = array_multiplier(8);
    println!(
        "{}: {} gates, depth {}",
        nl.name(),
        nl.gate_count(),
        nl.max_level()
    );
    let timing = Timing::annotate(&nl, &DelayModel::dac2001(7));

    let pep = analyze(&nl, &timing, &AnalysisConfig::default());
    let delay = pep.circuit_delay(&nl);
    let step = pep.step();
    let mean = delay.mean_time(step);
    let sigma = delay.std_time(step);
    println!("circuit delay: mean {mean:.2}, sigma {sigma:.2}");

    // Yield(T) = P(delay <= T), straight off the event group.
    println!("\n  clock period   timing yield");
    let lo = delay.quantile(0.001).expect("non-empty");
    let hi = delay.quantile(0.9999).expect("non-empty");
    let points = 8;
    for i in 0..=points {
        let tick = lo + (hi - lo) * i / points;
        let t = step.time_of(tick);
        let y = delay.cdf_at(tick) / delay.total_mass();
        println!("  {t:>10.2}    {:>7.3}%", y * 100.0);
    }

    // The period needed for a target yield is a quantile lookup.
    for target in [0.90, 0.99, 0.999] {
        let tick = delay.quantile(target).expect("non-empty");
        println!(
            "period for {:.1}% yield: {:.2}",
            target * 100.0,
            step.time_of(tick)
        );
    }

    // Cross-check the 99% period against Monte Carlo.
    let mc = run_monte_carlo(
        &nl,
        &timing,
        &McConfig {
            runs: 5_000,
            histogram_step: Some(step),
            ..McConfig::default()
        },
    );
    // Worst output per run approximated by the latest-mean output's
    // histogram (exact per-run max would need the joint samples; the
    // per-output histogram of the slowest output is the usual proxy).
    let worst_po = *nl
        .primary_outputs()
        .iter()
        .max_by(|&&a, &&b| mc.mean(a).partial_cmp(&mc.mean(b)).expect("finite means"))
        .expect("outputs exist");
    let mc_hist = mc.histogram(worst_po).expect("histograms enabled");
    let mc_p99 = step.time_of(mc_hist.quantile(0.99).expect("non-empty"));
    let pep_p99 = step.time_of(delay.quantile(0.99).expect("non-empty"));
    println!(
        "\n99% period, PEP circuit-delay {pep_p99:.2} vs MC slowest-output {mc_p99:.2} \
         ({:+.1}% difference)",
        (pep_p99 - mc_p99) / mc_p99 * 100.0
    );
}
