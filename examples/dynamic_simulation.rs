//! Dynamic (two-vector) probabilistic simulation — the paper's §1 second
//! operating mode: "dynamic simulation with given input vectors".
//!
//! Applies a vector pair to a ripple-carry adder and reports the full
//! transition-time distribution of every switching output, cross-checked
//! against a dynamic Monte Carlo simulation.
//!
//! ```sh
//! cargo run --release --example dynamic_simulation
//! ```

use psta::celllib::{DelayModel, Timing};
use psta::core::{dynamic, AnalysisConfig};
use psta::netlist::generate::ripple_carry_adder;
use psta::sta::monte_carlo::McConfig;
use psta::sta::transition::monte_carlo_transition;

fn main() {
    let bits = 8;
    let nl = ripple_carry_adder(bits);
    let timing = Timing::annotate(&nl, &DelayModel::dac2001(3));

    // Vector pair: 0 + 0 -> 255 + 1, firing the full carry chain.
    // Input order is a0,b0,a1,b1,...,cin.
    let mut v1 = vec![false; nl.primary_inputs().len()];
    let mut v2 = vec![false; nl.primary_inputs().len()];
    for i in 0..bits {
        v2[2 * i] = true; // a = 0xFF
    }
    v2[1] = true; // b = 1
    v1[2 * bits] = false;
    v2[2 * bits] = false;

    let d = dynamic::analyze_transition(&nl, &timing, &v1, &v2, &AnalysisConfig::default());
    println!(
        "{}: {} of {} nodes switch on this vector pair\n",
        nl.name(),
        nl.node_ids().filter(|&n| d.transitions(n)).count(),
        nl.node_count()
    );

    let mc = monte_carlo_transition(
        &nl,
        &timing,
        &v1,
        &v2,
        &McConfig {
            runs: 3_000,
            ..McConfig::default()
        },
    );

    println!("transition-time distributions at the sum outputs:");
    println!("  signal   dir    PEP mean ± sigma      MC mean ± sigma");
    for i in 0..bits {
        let s = nl.node_id(&format!("sum{i}")).expect("sum bit exists");
        if !d.transitions(s) {
            println!("  sum{i}     (no transition)");
            continue;
        }
        let dir = if d.is_rising(s) { "rise" } else { "fall" };
        println!(
            "  sum{i}     {dir}   {:6.2} ± {:4.2}        {:6.2} ± {:4.2}",
            d.mean_time(s).expect("switches"),
            d.std_time(s).expect("switches"),
            mc.mean(s).expect("switches"),
            mc.std(s).expect("switches"),
        );
    }

    // The carry out is the deepest signal: print its whole distribution.
    let cout = nl.node_id(&format!("c{}", bits - 1)).expect("carry out");
    if d.transitions(cout) {
        let g = d.group(cout);
        let step = d.step();
        println!(
            "\ncarry-out transition ({}), full event group:",
            if d.is_rising(cout) {
                "rising"
            } else {
                "falling"
            }
        );
        let mut shown = 0;
        for (t, p) in g.iter() {
            if p > 0.01 {
                println!("  t = {:6.2}  p = {:.3}", step.time_of(t), p);
                shown += 1;
            }
        }
        println!("  ({} more events below p = 0.01)", g.support_len() - shown);
    }
}
