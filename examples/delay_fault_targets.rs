//! Target selection for delay-fault testing — another application the
//! paper's conclusion proposes.
//!
//! A small extra delay (a resistive open, crosstalk, a weak driver) only
//! causes a failure if the affected node's arrival time can exceed the
//! sampling deadline. `pep_core::criticality` ranks every node by the
//! probability that an injected fault delay `δ` violates the deadline —
//! the nodes most likely to fail first are the best delay-test targets.
//!
//! ```sh
//! cargo run --release --example delay_fault_targets
//! ```

use psta::celllib::{DelayModel, Timing};
use psta::core::{analyze, criticality, AnalysisConfig};
use psta::netlist::generate::{random_circuit, RandomCircuitSpec};

fn main() {
    let nl = random_circuit(&RandomCircuitSpec {
        name: "dut".into(),
        inputs: 24,
        gates: 400,
        depth: 14,
        seed: 99,
        ..RandomCircuitSpec::default()
    });
    let timing = Timing::annotate(&nl, &DelayModel::dac2001(5));
    let pep = analyze(&nl, &timing, &AnalysisConfig::default());

    // Deadline: the 99.9% quantile of the circuit delay — a realistic
    // sampling edge with a little guard band.
    let delay = pep.circuit_delay(&nl);
    let step = pep.step();
    let deadline = step.time_of(delay.quantile(0.999).expect("non-empty"));
    // Injected fault size: 8% of the nominal circuit delay.
    let fault = delay.mean_time(step) * 0.08;
    println!(
        "{}: {} gates; deadline T = {deadline:.2}, fault size δ = {fault:.2}\n",
        nl.name(),
        nl.gate_count()
    );

    let scored = criticality::violation_probabilities(&nl, &timing, &pep, deadline, fault);
    println!("top delay-test targets (violation probability under δ):");
    for (n, p) in scored.iter().take(10) {
        println!(
            "  {:>8}  level {:>2}  P(fail) = {:>6.2}%  arrival mean {:.2}",
            nl.node_name(*n),
            nl.level(*n),
            p * 100.0,
            pep.mean_time(*n)
        );
    }
    let testable = scored.iter().filter(|(_, p)| *p > 0.01).count();
    println!(
        "\n{} of {} nodes are detectable targets (P(fail) > 1%) at this fault size",
        testable,
        nl.gate_count()
    );

    // Which outputs actually set the circuit's speed?
    println!("\noutput criticality profile:");
    let mut crit = criticality::output_criticality(&nl, &pep);
    crit.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    for (po, p) in crit.iter().take(5) {
        println!(
            "  {:>8}  P(defines circuit delay) = {:>6.2}%",
            nl.node_name(*po),
            p * 100.0
        );
    }
}
