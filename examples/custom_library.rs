//! Using a custom statistical cell library instead of the paper's
//! built-in pin-count delay rule.
//!
//! The library text format assigns per-gate-kind delay rules (see
//! `pep_celllib::library`); everything downstream — event propagation,
//! Monte Carlo, slack — consumes the resulting `Timing` unchanged.
//!
//! ```sh
//! cargo run --release --example custom_library
//! ```

use psta::celllib::Library;
use psta::core::{analyze, AnalysisConfig};
use psta::netlist::samples;
use psta::sta::slack::{k_longest_paths, SlackReport};

const LIBRARY: &str = "\
# kind   base per_fanin per_fanout sigma_lo sigma_hi
default  2.0  1.0       0.50       0.04     0.10
NAND     1.4  0.8       0.40       0.05     0.07   # fast NANDs
NOR      2.6  1.2       0.55       0.06     0.10   # slow NORs
NOT      0.9  0.4       0.30       0.04     0.06
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let library = Library::parse(LIBRARY)?;
    let nl = samples::c17(); // six NAND gates
    println!("library rules in effect:\n{}", library.to_text());

    // Same circuit, two characterizations.
    let fast = library.annotate(&nl, 42);
    let generic = Library::dac2001().annotate(&nl, 42);

    let a_fast = analyze(&nl, &fast, &AnalysisConfig::default());
    let a_generic = analyze(&nl, &generic, &AnalysisConfig::default());
    println!("arrival times under each library:");
    println!("  output   custom (NAND-tuned)    generic");
    for &po in nl.primary_outputs() {
        println!(
            "  {:>6}   {:6.3} ± {:5.3}        {:6.3} ± {:5.3}",
            nl.node_name(po),
            a_fast.mean_time(po),
            a_fast.std_time(po),
            a_generic.mean_time(po),
            a_generic.std_time(po),
        );
    }

    // Downstream analyses consume the same Timing.
    let report = SlackReport::analyze(&nl, &fast, None);
    println!(
        "\ncustom-library critical path (period {:.3}):",
        report.clock_period()
    );
    let top = k_longest_paths(&nl, &fast, 1);
    let names: Vec<&str> = top[0].nodes.iter().map(|&n| nl.node_name(n)).collect();
    println!("  {}  (delay {:.3})", names.join(" -> "), top[0].delay);
    Ok(())
}
