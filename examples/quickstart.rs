//! Quickstart: build a small circuit, give every cell a statistical
//! delay, and run both the probabilistic-event-propagation analyzer and
//! the Monte Carlo baseline.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use psta::celllib::{DelayModel, Timing};
use psta::core::{analyze, compare, AnalysisConfig};
use psta::netlist::{parse_bench, NetlistError};
use psta::sta::monte_carlo::{run_monte_carlo, McConfig};

fn main() -> Result<(), NetlistError> {
    // Any ISCAS-style .bench netlist works here; this one is ISCAS-85 c17.
    let nl = parse_bench(
        "c17",
        "INPUT(1)\nINPUT(2)\nINPUT(3)\nINPUT(6)\nINPUT(7)\n\
         OUTPUT(22)\nOUTPUT(23)\n\
         10 = NAND(1, 3)\n11 = NAND(3, 6)\n16 = NAND(2, 11)\n\
         19 = NAND(11, 7)\n22 = NAND(10, 16)\n23 = NAND(16, 19)\n",
    )?;
    println!(
        "{}: {} gates, {} inputs",
        nl.name(),
        nl.gate_count(),
        nl.primary_inputs().len()
    );

    // The paper's §4 delay model: cell-delay mean from pin counts, σ a
    // fixed per-cell fraction of the mean drawn from (4%, 10%).
    let timing = Timing::annotate(&nl, &DelayModel::dac2001(42));

    // Probabilistic event propagation — one deterministic pass.
    let pep = analyze(&nl, &timing, &AnalysisConfig::default());
    println!("\narrival-time distributions (probabilistic event propagation):");
    for &po in nl.primary_outputs() {
        println!(
            "  {:>3}: mean {:6.3}  sigma {:5.3}  99% quantile {:6.3}",
            nl.node_name(po),
            pep.mean_time(po),
            pep.std_time(po),
            pep.quantile_time(po, 0.99).expect("outputs carry events"),
        );
    }
    println!(
        "  ({} supergates evaluated, {} stems conditioned)",
        pep.stats().supergates,
        pep.stats().stems_conditioned
    );

    // The Monte Carlo baseline the paper compares against.
    let mc = run_monte_carlo(
        &nl,
        &timing,
        &McConfig {
            runs: 5_000,
            ..McConfig::default()
        },
    );
    println!("\nMonte Carlo reference (5000 runs):");
    for &po in nl.primary_outputs() {
        println!(
            "  {:>3}: mean {:6.3}  sigma {:5.3}  (mean error bound ±{:.2}%)",
            nl.node_name(po),
            mc.mean(po),
            mc.std(po),
            mc.error_bound(po) * 100.0,
        );
    }

    let (mean_err, std_err) = compare::against_monte_carlo(&nl, &pep, &mc).report();
    println!("\nPEP vs MC over all nodes: mean error {mean_err:.2}%, sigma error {std_err:.2}%");
    Ok(())
}
