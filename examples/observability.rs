//! Observing an analysis run: phases, metrics and the run report — plus
//! a measurement of what the instrumentation costs.
//!
//! ```sh
//! cargo run --release --example observability
//! ```

use psta::celllib::{DelayModel, Timing};
use psta::core::{analyze_observed, AnalysisConfig};
use psta::netlist::generate::{iscas_profile, IscasProfile};
use psta::obs::Session;
use std::time::Instant;

fn main() {
    let netlist = iscas_profile(IscasProfile::S5378);
    let timing = Timing::annotate(&netlist, &DelayModel::dac2001(1));
    let config = AnalysisConfig::default();

    // An enabled session records everything; the guard returned by
    // `phase` closes its span on drop.
    let obs = Session::new();
    let analysis = {
        let _phase = obs.phase("analyze");
        analyze_observed(&netlist, &timing, &config, &obs)
    };
    // Report the latest-arriving output (some pseudo-outputs are driven
    // straight by inputs and carry no timing).
    let po = netlist
        .primary_outputs()
        .iter()
        .copied()
        .max_by(|&a, &b| {
            analysis
                .mean_time(a)
                .partial_cmp(&analysis.mean_time(b))
                .expect("means are finite")
        })
        .expect("has outputs");
    println!(
        "{}: mean arrival at {} = {:.2}\n",
        netlist.name(),
        netlist.node_name(po),
        analysis.mean_time(po)
    );
    println!("{}", obs.report("example").render_text(true));

    // What does observing cost? Alternate disabled/enabled runs and
    // compare means. Both run the same instrumented code; the disabled
    // session skips timestamps, locks and histogram recording.
    let reps = 20;
    let mut off = 0.0;
    let mut on = 0.0;
    for _ in 0..reps {
        let t0 = Instant::now();
        std::hint::black_box(analyze_observed(
            &netlist,
            &timing,
            &config,
            &Session::disabled(),
        ));
        off += t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        std::hint::black_box(analyze_observed(
            &netlist,
            &timing,
            &config,
            &Session::new(),
        ));
        on += t0.elapsed().as_secs_f64();
    }
    println!(
        "observability overhead over {reps} runs: disabled {:.1} ms, enabled {:.1} ms ({:+.2}%)",
        off / reps as f64 * 1e3,
        on / reps as f64 * 1e3,
        (on - off) / off * 100.0
    );
}
